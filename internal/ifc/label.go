package ifc

import (
	"fmt"
	"sort"
	"strings"
)

// A Label is an immutable set of tags. The zero value is the empty label,
// which is valid and means "unconstrained" for secrecy and "no integrity
// guarantees" for integrity.
//
// Labels are hash-consed: every distinct tag set is backed by one shared,
// interned record holding the sorted, deduplicated tag slice, the interned
// tag IDs and the canonical string form (see intern.go). This keeps subset
// checks linear with mostly-integer comparisons, makes equality a single
// key comparison, and renders the canonical String form exactly once per
// distinct label — which matters because labels are compared on every data
// flow and appear in audit records and on the wire.
type Label struct {
	rec *labelRec // nil means the empty label; never mutated
}

// EmptyLabel is the label with no tags.
var EmptyLabel = Label{}

// NewLabel builds a label from the given tags, sorting and deduplicating.
// Invalid tags cause an error; the paper's model never manipulates
// malformed tags, so construction is the single validation point.
func NewLabel(tags ...Tag) (Label, error) {
	for _, t := range tags {
		if err := t.Validate(); err != nil {
			return Label{}, err
		}
	}
	return newLabelUnchecked(tags), nil
}

// MustLabel is like NewLabel but panics on invalid tags. It is intended for
// literals in tests and examples where the tags are compile-time constants.
func MustLabel(tags ...Tag) Label {
	l, err := NewLabel(tags...)
	if err != nil {
		panic(err)
	}
	return l
}

// ParseLabel parses the canonical form produced by String, e.g.
// "{medical,ann}". The empty set may be written "{}" or "∅".
func ParseLabel(s string) (Label, error) {
	s = strings.TrimSpace(s)
	if s == "∅" || s == "{}" {
		return Label{}, nil
	}
	if len(s) < 2 || s[0] != '{' || s[len(s)-1] != '}' {
		return Label{}, fmt.Errorf("ifc: label %q is not of the form {tag,...}", truncate(s, 64))
	}
	parts := strings.Split(s[1:len(s)-1], ",")
	tags := make([]Tag, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		tags = append(tags, Tag(p))
	}
	return NewLabel(tags...)
}

// newLabelUnchecked sorts and deduplicates without validating tags.
func newLabelUnchecked(tags []Tag) Label {
	if len(tags) == 0 {
		return Label{}
	}
	owned := make([]Tag, len(tags))
	copy(owned, tags)
	sort.Slice(owned, func(i, j int) bool { return owned[i] < owned[j] })
	out := owned[:1]
	for _, t := range owned[1:] {
		if t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return Label{rec: internLabel(out, nil)}
}

// makeLabel wraps a sorted, deduplicated tag set (with aligned intern IDs
// when the caller knows them) in a Label. The caller must not retain tags.
func makeLabel(tags []Tag, ids []uint32) Label {
	return Label{rec: internLabel(tags, ids)}
}

// list returns the shared sorted tag slice. Callers must not mutate it.
func (l Label) list() []Tag {
	if l.rec == nil {
		return nil
	}
	return l.rec.tags
}

// key returns the label's unique intern key (0 for the empty label).
func (l Label) key() uint64 {
	if l.rec == nil {
		return 0
	}
	return l.rec.key
}

// Len returns the number of tags in the label.
func (l Label) Len() int {
	if l.rec == nil {
		return 0
	}
	return len(l.rec.tags)
}

// IsEmpty reports whether the label has no tags.
func (l Label) IsEmpty() bool { return l.rec == nil || len(l.rec.tags) == 0 }

// Has reports whether the label contains the tag.
func (l Label) Has(t Tag) bool {
	tags := l.list()
	i := sort.Search(len(tags), func(i int) bool { return tags[i] >= t })
	return i < len(tags) && tags[i] == t
}

// Tags returns a copy of the tag set in sorted order.
func (l Label) Tags() []Tag {
	tags := l.list()
	if len(tags) == 0 {
		return nil
	}
	out := make([]Tag, len(tags))
	copy(out, tags)
	return out
}

// Subset reports whether every tag of l is also in other. Both tag sets are
// sorted, so this is a single merge walk; interned tag IDs make the common
// "same tag on both sides" step an integer comparison.
func (l Label) Subset(other Label) bool {
	if l.rec == nil {
		return true
	}
	if other.rec == nil {
		return false
	}
	if l.rec == other.rec {
		return true
	}
	a, b := l.rec, other.rec
	n, m := len(a.tags), len(b.tags)
	if n > m {
		return false
	}
	j := 0
	for i := 0; i < n; i++ {
		for {
			if j == m {
				return false
			}
			if a.ids[i] == b.ids[j] {
				break
			}
			if b.tags[j] < a.tags[i] {
				j++
				continue
			}
			return false
		}
		j++
	}
	return true
}

// Equal reports whether both labels contain exactly the same tags. Interning
// makes this a pointer comparison.
func (l Label) Equal(other Label) bool {
	return l.rec == other.rec
}

// Union returns the label containing every tag of l and other.
func (l Label) Union(other Label) Label {
	if l.IsEmpty() || l.rec == other.rec {
		return other
	}
	if other.IsEmpty() {
		return l
	}
	a, b := l.rec, other.rec
	tags := make([]Tag, 0, len(a.tags)+len(b.tags))
	ids := make([]uint32, 0, len(a.tags)+len(b.tags))
	i, j := 0, 0
	for i < len(a.tags) && j < len(b.tags) {
		switch {
		case a.ids[i] == b.ids[j]:
			tags = append(tags, a.tags[i])
			ids = append(ids, a.ids[i])
			i++
			j++
		case a.tags[i] < b.tags[j]:
			tags = append(tags, a.tags[i])
			ids = append(ids, a.ids[i])
			i++
		default:
			tags = append(tags, b.tags[j])
			ids = append(ids, b.ids[j])
			j++
		}
	}
	tags = append(tags, a.tags[i:]...)
	ids = append(ids, a.ids[i:]...)
	tags = append(tags, b.tags[j:]...)
	ids = append(ids, b.ids[j:]...)
	return makeLabel(tags, ids)
}

// Intersect returns the label containing the tags present in both l and other.
func (l Label) Intersect(other Label) Label {
	if l.rec == other.rec {
		return l
	}
	if l.rec == nil || other.rec == nil {
		return Label{}
	}
	a, b := l.rec, other.rec
	var tags []Tag
	var ids []uint32
	i, j := 0, 0
	for i < len(a.tags) && j < len(b.tags) {
		switch {
		case a.ids[i] == b.ids[j]:
			tags = append(tags, a.tags[i])
			ids = append(ids, a.ids[i])
			i++
			j++
		case a.tags[i] < b.tags[j]:
			i++
		default:
			j++
		}
	}
	if tags == nil {
		return Label{}
	}
	return makeLabel(tags, ids)
}

// Diff returns the tags in l that are not in other.
func (l Label) Diff(other Label) Label {
	if l.rec == nil || l.rec == other.rec {
		return Label{}
	}
	if other.rec == nil {
		return l
	}
	a, b := l.rec, other.rec
	var tags []Tag
	var ids []uint32
	j := 0
	for i := range a.tags {
		for j < len(b.tags) && b.tags[j] < a.tags[i] {
			j++
		}
		if j < len(b.tags) && a.ids[i] == b.ids[j] {
			continue
		}
		tags = append(tags, a.tags[i])
		ids = append(ids, a.ids[i])
	}
	if tags == nil {
		return Label{}
	}
	if len(tags) == len(a.tags) {
		return l
	}
	return makeLabel(tags, ids)
}

// With returns a copy of the label with the tags added.
func (l Label) With(tags ...Tag) Label {
	if len(tags) == 0 {
		return l
	}
	return l.Union(newLabelUnchecked(tags))
}

// Without returns a copy of the label with the tags removed.
func (l Label) Without(tags ...Tag) Label {
	if len(tags) == 0 {
		return l
	}
	return l.Diff(newLabelUnchecked(tags))
}

// String renders the canonical form, e.g. "{ann,medical}", or "∅" for the
// empty label, matching the notation used in the paper's figures. The form
// is rendered once per distinct label and shared thereafter.
func (l Label) String() string {
	if l.rec == nil {
		return "∅"
	}
	return l.rec.str
}

// MarshalText implements encoding.TextMarshaler using the canonical form.
func (l Label) MarshalText() ([]byte, error) {
	return []byte(l.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler, accepting the
// canonical form produced by MarshalText.
func (l *Label) UnmarshalText(text []byte) error {
	parsed, err := ParseLabel(string(text))
	if err != nil {
		return err
	}
	*l = parsed
	return nil
}
