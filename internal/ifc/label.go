package ifc

import (
	"fmt"
	"sort"
	"strings"
)

// A Label is an immutable set of tags. The zero value is the empty label,
// which is valid and means "unconstrained" for secrecy and "no integrity
// guarantees" for integrity.
//
// Labels are stored as sorted, deduplicated slices. This keeps subset
// checks linear, equality cheap, and the canonical String form stable,
// which matters because labels are compared on every data flow and appear
// in audit records and on the wire.
type Label struct {
	tags []Tag // sorted ascending, no duplicates; never mutated after construction
}

// EmptyLabel is the label with no tags.
var EmptyLabel = Label{}

// NewLabel builds a label from the given tags, sorting and deduplicating.
// Invalid tags cause an error; the paper's model never manipulates
// malformed tags, so construction is the single validation point.
func NewLabel(tags ...Tag) (Label, error) {
	for _, t := range tags {
		if err := t.Validate(); err != nil {
			return Label{}, err
		}
	}
	return newLabelUnchecked(tags), nil
}

// MustLabel is like NewLabel but panics on invalid tags. It is intended for
// literals in tests and examples where the tags are compile-time constants.
func MustLabel(tags ...Tag) Label {
	l, err := NewLabel(tags...)
	if err != nil {
		panic(err)
	}
	return l
}

// ParseLabel parses the canonical form produced by String, e.g.
// "{medical,ann}". The empty set may be written "{}" or "∅".
func ParseLabel(s string) (Label, error) {
	s = strings.TrimSpace(s)
	if s == "∅" || s == "{}" {
		return Label{}, nil
	}
	if len(s) < 2 || s[0] != '{' || s[len(s)-1] != '}' {
		return Label{}, fmt.Errorf("ifc: label %q is not of the form {tag,...}", truncate(s, 64))
	}
	parts := strings.Split(s[1:len(s)-1], ",")
	tags := make([]Tag, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		tags = append(tags, Tag(p))
	}
	return NewLabel(tags...)
}

// newLabelUnchecked sorts and deduplicates without validating tags.
func newLabelUnchecked(tags []Tag) Label {
	if len(tags) == 0 {
		return Label{}
	}
	owned := make([]Tag, len(tags))
	copy(owned, tags)
	sort.Slice(owned, func(i, j int) bool { return owned[i] < owned[j] })
	out := owned[:1]
	for _, t := range owned[1:] {
		if t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return Label{tags: out}
}

// Len returns the number of tags in the label.
func (l Label) Len() int { return len(l.tags) }

// IsEmpty reports whether the label has no tags.
func (l Label) IsEmpty() bool { return len(l.tags) == 0 }

// Has reports whether the label contains the tag.
func (l Label) Has(t Tag) bool {
	i := sort.Search(len(l.tags), func(i int) bool { return l.tags[i] >= t })
	return i < len(l.tags) && l.tags[i] == t
}

// Tags returns a copy of the tag set in sorted order.
func (l Label) Tags() []Tag {
	if len(l.tags) == 0 {
		return nil
	}
	out := make([]Tag, len(l.tags))
	copy(out, l.tags)
	return out
}

// Subset reports whether every tag of l is also in other. Both slices are
// sorted, so this is a single merge walk.
func (l Label) Subset(other Label) bool {
	if len(l.tags) > len(other.tags) {
		return false
	}
	j := 0
	for _, t := range l.tags {
		for j < len(other.tags) && other.tags[j] < t {
			j++
		}
		if j == len(other.tags) || other.tags[j] != t {
			return false
		}
		j++
	}
	return true
}

// Equal reports whether both labels contain exactly the same tags.
func (l Label) Equal(other Label) bool {
	if len(l.tags) != len(other.tags) {
		return false
	}
	for i, t := range l.tags {
		if other.tags[i] != t {
			return false
		}
	}
	return true
}

// Union returns the label containing every tag of l and other.
func (l Label) Union(other Label) Label {
	if l.IsEmpty() {
		return other
	}
	if other.IsEmpty() {
		return l
	}
	merged := make([]Tag, 0, len(l.tags)+len(other.tags))
	i, j := 0, 0
	for i < len(l.tags) && j < len(other.tags) {
		switch {
		case l.tags[i] < other.tags[j]:
			merged = append(merged, l.tags[i])
			i++
		case l.tags[i] > other.tags[j]:
			merged = append(merged, other.tags[j])
			j++
		default:
			merged = append(merged, l.tags[i])
			i++
			j++
		}
	}
	merged = append(merged, l.tags[i:]...)
	merged = append(merged, other.tags[j:]...)
	return Label{tags: merged}
}

// Intersect returns the label containing the tags present in both l and other.
func (l Label) Intersect(other Label) Label {
	var out []Tag
	i, j := 0, 0
	for i < len(l.tags) && j < len(other.tags) {
		switch {
		case l.tags[i] < other.tags[j]:
			i++
		case l.tags[i] > other.tags[j]:
			j++
		default:
			out = append(out, l.tags[i])
			i++
			j++
		}
	}
	return Label{tags: out}
}

// Diff returns the tags in l that are not in other.
func (l Label) Diff(other Label) Label {
	var out []Tag
	j := 0
	for _, t := range l.tags {
		for j < len(other.tags) && other.tags[j] < t {
			j++
		}
		if j < len(other.tags) && other.tags[j] == t {
			continue
		}
		out = append(out, t)
	}
	return Label{tags: out}
}

// With returns a copy of the label with the tags added.
func (l Label) With(tags ...Tag) Label {
	if len(tags) == 0 {
		return l
	}
	return l.Union(newLabelUnchecked(tags))
}

// Without returns a copy of the label with the tags removed.
func (l Label) Without(tags ...Tag) Label {
	if len(tags) == 0 {
		return l
	}
	return l.Diff(newLabelUnchecked(tags))
}

// String renders the canonical form, e.g. "{ann,medical}", or "∅" for the
// empty label, matching the notation used in the paper's figures.
func (l Label) String() string {
	if len(l.tags) == 0 {
		return "∅"
	}
	var b strings.Builder
	b.Grow(2 + len(l.tags)*8)
	b.WriteByte('{')
	for i, t := range l.tags {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(string(t))
	}
	b.WriteByte('}')
	return b.String()
}

// MarshalText implements encoding.TextMarshaler using the canonical form.
func (l Label) MarshalText() ([]byte, error) {
	return []byte(l.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler, accepting the
// canonical form produced by MarshalText.
func (l *Label) UnmarshalText(text []byte) error {
	parsed, err := ParseLabel(string(text))
	if err != nil {
		return err
	}
	*l = parsed
	return nil
}
