package ifc

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// sanitiserGate builds the Fig. 5 Device Input Sanitiser: an endorser that
// converts Zeb's non-standard device data to hospital format.
func sanitiserGate() *Gate {
	return &Gate{
		Name:   "device-input-sanitiser",
		Input:  MustContext([]Tag{"medical", "zeb"}, []Tag{"zeb-dev", "consent"}),
		Output: MustContext([]Tag{"medical", "zeb"}, []Tag{"hosp-dev", "consent"}),
		Transform: func(data []byte) ([]byte, error) {
			return append([]byte("hospital-format:"), data...), nil
		},
	}
}

// statsGate builds the Fig. 6 Statistics Generator: a declassifier that
// anonymises patient data before releasing it to management.
func statsGate() *Gate {
	return &Gate{
		Name:   "statistics-generator",
		Input:  MustContext([]Tag{"medical", "ann", "zeb"}, []Tag{"hosp-dev", "consent"}),
		Output: MustContext([]Tag{"medical", "stats"}, []Tag{"anon"}),
		Transform: func(data []byte) ([]byte, error) {
			return []byte("aggregate-statistics"), nil
		},
	}
}

func TestGateKindClassification(t *testing.T) {
	tests := []struct {
		name string
		gate *Gate
		want GateKind
	}{
		{"sanitiser-is-endorser", sanitiserGate(), GateEndorser},
		{"stats-is-both", statsGate(), GateDeclassifierEndorser},
		{
			"pure-declassifier",
			&Gate{
				Input:  MustContext([]Tag{"secret"}, nil),
				Output: SecurityContext{},
			},
			GateDeclassifier,
		},
		{
			"passthrough",
			&Gate{
				Input:  MustContext([]Tag{"a"}, nil),
				Output: MustContext([]Tag{"a", "b"}, nil),
			},
			GatePassthrough,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.gate.Kind(); got != tt.want {
				t.Fatalf("Kind() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestGateKindString(t *testing.T) {
	kinds := map[GateKind]string{
		GatePassthrough:          "passthrough",
		GateDeclassifier:         "declassifier",
		GateEndorser:             "endorser",
		GateDeclassifierEndorser: "declassifier+endorser",
		GateKind(99):             "GateKind(99)",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}

// TestFig5Endorsement reproduces experiment E5: the sanitiser reads Zeb's
// non-standard data, transforms it, changes security context, and only then
// may the data reach Zeb's hospital analyser.
func TestFig5Endorsement(t *testing.T) {
	gate := sanitiserGate()
	zebSensor := MustContext([]Tag{"medical", "zeb"}, []Tag{"zeb-dev", "consent"})
	zebAnalyser := MustContext([]Tag{"medical", "zeb"}, []Tag{"hosp-dev", "consent"})

	// Direct flow is illegal: the analyser demands hosp-dev integrity.
	if err := EnforceFlow(zebSensor, zebAnalyser); err == nil {
		t.Fatal("direct sensor->analyser flow must be denied")
	}

	operator := NewEntity("sanitiser-proc", gate.Input)
	if err := operator.GrantPrivileges(gate.RequiredPrivileges()); err != nil {
		t.Fatal(err)
	}

	out, err := gate.Pipe(operator, zebSensor, zebAnalyser, []byte("raw-reading"))
	if err != nil {
		t.Fatalf("gated flow failed: %v", err)
	}
	if !bytes.HasPrefix(out, []byte("hospital-format:")) {
		t.Fatalf("transform not applied: %q", out)
	}
}

// TestFig6Declassification reproduces experiment E6: patient data flows into
// the statistics generator, is anonymised, and only the anonymised result
// reaches the ward manager. The ward manager can never receive raw data.
func TestFig6Declassification(t *testing.T) {
	gate := statsGate()
	annSensor := MustContext([]Tag{"medical", "ann"}, []Tag{"hosp-dev", "consent"})
	wardManager := MustContext([]Tag{"medical", "stats"}, []Tag{"anon"})

	// Raw patient data must never flow directly to management.
	if err := EnforceFlow(annSensor, wardManager); err == nil {
		t.Fatal("raw patient data must not reach the ward manager")
	}

	operator := NewEntity("stats-proc", gate.Input)
	if err := operator.GrantPrivileges(gate.RequiredPrivileges()); err != nil {
		t.Fatal(err)
	}
	out, err := gate.Pipe(operator, annSensor, wardManager, []byte("ann-vitals"))
	if err != nil {
		t.Fatalf("declassified flow failed: %v", err)
	}
	if string(out) != "aggregate-statistics" {
		t.Fatalf("anonymisation not applied: %q", out)
	}
}

func TestGateCrossRequiresPrivileges(t *testing.T) {
	gate := sanitiserGate()
	unprivileged := NewEntity("rogue", gate.Input)
	if _, err := gate.Cross(unprivileged, []byte("x")); !errors.Is(err, ErrPrivilege) {
		t.Fatalf("Cross without privileges = %v, want ErrPrivilege", err)
	}
}

func TestGateGuardVeto(t *testing.T) {
	released := false
	gate := &Gate{
		Name:   "time-release",
		Input:  MustContext([]Tag{"secret"}, nil),
		Output: SecurityContext{},
		Guard: func() error {
			if !released {
				return errors.New("embargo in force")
			}
			return nil
		},
	}
	op := NewEntity("release-agent", gate.Input)
	if err := op.GrantPrivileges(gate.RequiredPrivileges()); err != nil {
		t.Fatal(err)
	}

	if _, err := gate.Cross(op, []byte("doc")); !errors.Is(err, ErrGateRefused) {
		t.Fatalf("guarded crossing = %v, want ErrGateRefused", err)
	}
	released = true
	out, err := gate.Cross(op, []byte("doc"))
	if err != nil {
		t.Fatalf("released crossing failed: %v", err)
	}
	if string(out) != "doc" {
		t.Fatalf("nil transform should pass data through, got %q", out)
	}
}

func TestGatePipeEnforcesBothEnds(t *testing.T) {
	gate := sanitiserGate()
	op := NewEntity("sanitiser-proc", gate.Input)
	if err := op.GrantPrivileges(gate.RequiredPrivileges()); err != nil {
		t.Fatal(err)
	}

	// Inbound violation: Ann's data is not cleared to enter Zeb's gate.
	annSensor := MustContext([]Tag{"medical", "ann"}, []Tag{"hosp-dev", "consent"})
	zebAnalyser := MustContext([]Tag{"medical", "zeb"}, []Tag{"hosp-dev", "consent"})
	if _, err := gate.Pipe(op, annSensor, zebAnalyser, nil); err == nil ||
		!strings.Contains(err.Error(), "inbound") {
		t.Fatalf("inbound violation not reported: %v", err)
	}

	// Outbound violation: gate output cannot reach a public sink.
	zebSensor := gate.Input
	if _, err := gate.Pipe(op, zebSensor, SecurityContext{}, nil); err == nil ||
		!strings.Contains(err.Error(), "outbound") {
		t.Fatalf("outbound violation not reported: %v", err)
	}
}

func TestGateTransformError(t *testing.T) {
	gate := &Gate{
		Name:      "failing",
		Transform: func([]byte) ([]byte, error) { return nil, errors.New("boom") },
	}
	op := NewEntity("op", SecurityContext{})
	if _, err := gate.Cross(op, nil); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("transform error not propagated: %v", err)
	}
}

func TestRequiredPrivilegesExact(t *testing.T) {
	gate := statsGate()
	p := gate.RequiredPrivileges()
	// Must remove patient identities and hosp-dev/consent, add stats+anon.
	if !p.RemoveSecrecy.Equal(MustLabel("ann", "zeb")) {
		t.Errorf("RemoveSecrecy = %v", p.RemoveSecrecy)
	}
	if !p.AddSecrecy.Equal(MustLabel("stats")) {
		t.Errorf("AddSecrecy = %v", p.AddSecrecy)
	}
	if !p.AddIntegrity.Equal(MustLabel("anon")) {
		t.Errorf("AddIntegrity = %v", p.AddIntegrity)
	}
	if !p.RemoveIntegrity.Equal(MustLabel("consent", "hosp-dev")) {
		t.Errorf("RemoveIntegrity = %v", p.RemoveIntegrity)
	}
	// And these privileges must be exactly sufficient.
	if err := p.AuthoriseTransition(gate.Input, gate.Output); err != nil {
		t.Fatalf("required privileges insufficient: %v", err)
	}
}
