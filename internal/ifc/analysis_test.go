package ifc

import (
	"testing"
	"testing/quick"
)

// fig2Chain models the Fig. 2 component chain: home sensors → gateway →
// app → DB → analyser(VM), all within the patient's confidentiality domain.
func fig2Chain() []SecurityContext {
	home := MustContext([]Tag{"medical", "ann"}, []Tag{"hosp-dev"})
	gateway := MustContext([]Tag{"medical", "ann"}, []Tag{"hosp-dev"})
	app := MustContext([]Tag{"medical", "ann", "cloud"}, nil)
	db := MustContext([]Tag{"medical", "ann", "cloud"}, nil)
	analyser := MustContext([]Tag{"medical", "ann", "cloud"}, nil)
	return []SecurityContext{home, gateway, app, db, analyser}
}

func TestChainCheckFeasible(t *testing.T) {
	chain := fig2Chain()
	if i := ChainCheck(chain); i != -1 {
		t.Fatalf("ChainCheck = %d, want -1 (feasible); hop %v -> %v", i, chain[i], chain[i+1])
	}
	if !ChainFeasible(chain) {
		t.Fatal("chain should be feasible")
	}
}

func TestChainCheckReportsFirstBreak(t *testing.T) {
	chain := fig2Chain()
	// Insert a public sink mid-chain: confidential data cannot reach it.
	chain[3] = SecurityContext{}
	if i := ChainCheck(chain); i != 2 {
		t.Fatalf("ChainCheck = %d, want 2", i)
	}
	if ChainFeasible(chain) {
		t.Fatal("broken chain reported feasible")
	}
}

func TestChainCheckDegenerate(t *testing.T) {
	if ChainCheck(nil) != -1 || ChainCheck([]SecurityContext{{}}) != -1 {
		t.Fatal("empty and single-element chains are trivially feasible")
	}
}

func TestRequiredGatesBridgesBreaks(t *testing.T) {
	secret := MustContext([]Tag{"medical", "ann"}, nil)
	public := SecurityContext{}
	chain := []SecurityContext{secret, public, secret}

	gates := RequiredGates(chain)
	if len(gates) != 1 {
		t.Fatalf("RequiredGates returned %d gates, want 1", len(gates))
	}
	g := gates[0]
	if !g.Input.Equal(secret) || !g.Output.Equal(public) {
		t.Fatalf("gate spans %v -> %v", g.Input, g.Output)
	}
	if g.Kind() != GateDeclassifier {
		t.Fatalf("gate kind = %v, want declassifier", g.Kind())
	}
	// The gate's required privileges must authorise exactly that hop.
	if err := g.RequiredPrivileges().AuthoriseTransition(g.Input, g.Output); err != nil {
		t.Fatalf("gate privileges insufficient: %v", err)
	}
	if gates := RequiredGates(fig2Chain()); gates != nil {
		t.Fatalf("feasible chain needs no gates, got %d", len(gates))
	}
}

func TestCreepMeasuresSecrecyGrowth(t *testing.T) {
	path := []SecurityContext{
		MustContext([]Tag{"s1"}, nil),
		MustContext([]Tag{"s1", "s2"}, nil),
		MustContext([]Tag{"s1", "s2", "s3", "s4"}, nil),
	}
	if got := Creep(path); got != 3 {
		t.Fatalf("Creep = %d, want 3", got)
	}
	if got := Creep(nil); got != 0 {
		t.Fatalf("Creep(nil) = %d, want 0", got)
	}
	if got := Creep(path[:1]); got != 0 {
		t.Fatalf("Creep(single) = %d, want 0", got)
	}
}

func TestReachableDomainConfinement(t *testing.T) {
	s1 := MustContext([]Tag{"s1"}, nil)
	s1s2 := MustContext([]Tag{"s1", "s2"}, nil)
	s3 := MustContext([]Tag{"s3"}, nil)
	pub := SecurityContext{}

	reach := ReachableDomain(s1, []SecurityContext{s1s2, s3, pub})
	if !containsContext(reach, s1) || !containsContext(reach, s1s2) {
		t.Fatalf("reachable set %v missing expected domains", reach)
	}
	if containsContext(reach, s3) || containsContext(reach, pub) {
		t.Fatalf("confinement violated: %v", reach)
	}
}

func TestReachableDomainTransitive(t *testing.T) {
	// a -> b -> c reachable even though a cannot reach c directly is
	// impossible under the flow preorder; verify the fixed point agrees
	// with direct checks.
	a := MustContext([]Tag{"x"}, nil)
	b := MustContext([]Tag{"x", "y"}, nil)
	c := MustContext([]Tag{"x", "y", "z"}, nil)
	reach := ReachableDomain(a, []SecurityContext{c, b})
	if len(reach) != 3 {
		t.Fatalf("reachable = %v, want all three", reach)
	}
}

// Property: every context in ReachableDomain is reachable via a sequence of
// legal flows — equivalently (because flow is transitive) directly from src.
func TestReachablePropertySoundness(t *testing.T) {
	if err := quick.Check(func(src SecurityContext, cands []SecurityContext) bool {
		if len(cands) > 12 {
			cands = cands[:12]
		}
		for _, c := range ReachableDomain(src, cands) {
			if !src.CanFlowTo(c) {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error("reachable domain unsound:", err)
	}
}

// Property: a feasible chain composes — data at chain[0] can legally reach
// chain[len-1] directly, by transitivity of the flow rule.
func TestChainPropertyComposition(t *testing.T) {
	if err := quick.Check(func(chain []SecurityContext) bool {
		if len(chain) < 2 || len(chain) > 10 {
			return true
		}
		if ChainFeasible(chain) {
			return chain[0].CanFlowTo(chain[len(chain)-1])
		}
		return true
	}, nil); err != nil {
		t.Error("feasible chain does not compose:", err)
	}
}
