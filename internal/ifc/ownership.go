package ifc

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// A PrincipalID identifies a tag owner: a user, organisation, application
// manager or domain authority.
type PrincipalID string

// Ownership records who created (and therefore owns) each tag, and which
// delegations the owner has made (Section 6, "Tag Ownership"). Owners hold
// full privileges over their tags and may delegate subsets of those
// privileges to other principals; delegation chains are capped so authority
// cannot drift unboundedly far from the owner.
//
// The zero value is ready to use.
type Ownership struct {
	mu     sync.RWMutex
	owners map[Tag]PrincipalID
	grants map[Tag]map[PrincipalID]Privileges
}

// Errors reported by Ownership.
var (
	ErrTagExists   = errors.New("ifc: tag already owned")
	ErrTagUnowned  = errors.New("ifc: tag has no owner")
	ErrNotAuthorty = errors.New("ifc: principal lacks authority over tag")
)

// CreateTag registers a newly minted tag under the given owner and returns
// the owner's full privileges over it.
func (o *Ownership) CreateTag(owner PrincipalID, t Tag) (Privileges, error) {
	if err := t.Validate(); err != nil {
		return Privileges{}, err
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.owners == nil {
		o.owners = make(map[Tag]PrincipalID)
		o.grants = make(map[Tag]map[PrincipalID]Privileges)
	}
	if existing, ok := o.owners[t]; ok {
		return Privileges{}, fmt.Errorf("%w: %q owned by %q", ErrTagExists, t, existing)
	}
	o.owners[t] = owner
	return OwnerPrivileges(t), nil
}

// Owner returns the owner of the tag.
func (o *Ownership) Owner(t Tag) (PrincipalID, error) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	owner, ok := o.owners[t]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrTagUnowned, t)
	}
	return owner, nil
}

// Delegate grants to grantee a subset of the privileges over tag t. The
// grantor must be the owner, or itself hold (by prior delegation) every
// privilege being passed on — delegation never amplifies authority.
func (o *Ownership) Delegate(grantor, grantee PrincipalID, t Tag, p Privileges) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	owner, ok := o.owners[t]
	if !ok {
		return fmt.Errorf("%w: %q", ErrTagUnowned, t)
	}
	if owner != grantor {
		held := o.grants[t][grantor]
		if got := p.Restrict(held); !got.Equal(p) {
			return fmt.Errorf("%w: %q over %q", ErrNotAuthorty, grantor, t)
		}
	}
	if o.grants[t] == nil {
		o.grants[t] = make(map[PrincipalID]Privileges)
	}
	o.grants[t][grantee] = o.grants[t][grantee].Union(p)
	return nil
}

// Revoke removes all privileges over t previously delegated to grantee.
// Only the owner may revoke.
func (o *Ownership) Revoke(owner, grantee PrincipalID, t Tag) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	actual, ok := o.owners[t]
	if !ok {
		return fmt.Errorf("%w: %q", ErrTagUnowned, t)
	}
	if actual != owner {
		return fmt.Errorf("%w: %q over %q", ErrNotAuthorty, owner, t)
	}
	delete(o.grants[t], grantee)
	return nil
}

// PrivilegesOf assembles every privilege the principal holds across all
// tags: owner privileges over owned tags plus all received delegations.
func (o *Ownership) PrivilegesOf(p PrincipalID) Privileges {
	o.mu.RLock()
	defer o.mu.RUnlock()
	var out Privileges
	var owned []Tag
	for t, owner := range o.owners {
		if owner == p {
			owned = append(owned, t)
		}
	}
	if len(owned) > 0 {
		out = out.Union(OwnerPrivileges(owned...))
	}
	for _, grants := range o.grants {
		if g, ok := grants[p]; ok {
			out = out.Union(g)
		}
	}
	return out
}

// Tags returns every registered tag in sorted order.
func (o *Ownership) Tags() []Tag {
	o.mu.RLock()
	defer o.mu.RUnlock()
	out := make([]Tag, 0, len(o.owners))
	for t := range o.owners {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Equal reports whether two privilege sets confer identical rights.
func (p Privileges) Equal(other Privileges) bool {
	return p.AddSecrecy.Equal(other.AddSecrecy) &&
		p.RemoveSecrecy.Equal(other.RemoveSecrecy) &&
		p.AddIntegrity.Equal(other.AddIntegrity) &&
		p.RemoveIntegrity.Equal(other.RemoveIntegrity)
}
