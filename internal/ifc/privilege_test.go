package ifc

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Generate implements quick.Generator for Privileges.
func (Privileges) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(Privileges{
		AddSecrecy:      genLabel(r),
		RemoveSecrecy:   genLabel(r),
		AddIntegrity:    genLabel(r),
		RemoveIntegrity: genLabel(r),
	})
}

func TestAuthoriseTransitionTable(t *testing.T) {
	base := MustContext([]Tag{"medical", "zeb"}, []Tag{"zeb-dev", "consent"})
	sanitised := MustContext([]Tag{"medical", "zeb"}, []Tag{"hosp-dev", "consent"})

	tests := []struct {
		name     string
		privs    Privileges
		from, to SecurityContext
		wantOp   string // "" means authorised
	}{
		{
			name:  "no-change-needs-nothing",
			privs: NoPrivileges,
			from:  base, to: base,
		},
		{
			name: "endorse-with-privilege",
			privs: Privileges{
				AddIntegrity:    MustLabel("hosp-dev"),
				RemoveIntegrity: MustLabel("zeb-dev"),
			},
			from: base, to: sanitised,
		},
		{
			name:  "endorse-without-privilege",
			privs: Privileges{RemoveIntegrity: MustLabel("zeb-dev")},
			from:  base, to: sanitised,
			wantOp: "add-integrity",
		},
		{
			name:   "declassify-without-privilege",
			privs:  NoPrivileges,
			from:   MustContext([]Tag{"medical", "ann"}, nil),
			to:     MustContext([]Tag{"medical"}, nil),
			wantOp: "remove-secrecy",
		},
		{
			name:  "declassify-with-privilege",
			privs: Privileges{RemoveSecrecy: MustLabel("ann")},
			from:  MustContext([]Tag{"medical", "ann"}, nil),
			to:    MustContext([]Tag{"medical"}, nil),
		},
		{
			name:   "confine-needs-add-secrecy",
			privs:  NoPrivileges,
			from:   SecurityContext{},
			to:     MustContext([]Tag{"medical"}, nil),
			wantOp: "add-secrecy",
		},
		{
			name:   "drop-integrity-needs-privilege",
			privs:  NoPrivileges,
			from:   MustContext(nil, []Tag{"consent"}),
			to:     SecurityContext{},
			wantOp: "remove-integrity",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.privs.AuthoriseTransition(tt.from, tt.to)
			if tt.wantOp == "" {
				if err != nil {
					t.Fatalf("transition denied: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("transition authorised, want denial")
			}
			if !errors.Is(err, ErrPrivilege) {
				t.Fatalf("error %v does not match ErrPrivilege", err)
			}
			var pe *PrivilegeError
			if !errors.As(err, &pe) {
				t.Fatalf("error %v is not a *PrivilegeError", err)
			}
			if pe.Op != tt.wantOp {
				t.Fatalf("denied op = %q, want %q", pe.Op, tt.wantOp)
			}
		})
	}
}

func TestOwnerPrivileges(t *testing.T) {
	p := OwnerPrivileges("medical", "ann")
	for _, tag := range []Tag{"medical", "ann"} {
		if !p.CanDeclassify(tag) || !p.CanEndorse(tag) {
			t.Errorf("owner should hold full rights over %q", tag)
		}
	}
	if p.CanDeclassify("other") {
		t.Error("owner rights must not extend to unowned tags")
	}
	// The owner can make any transition whose delta touches only owned tags.
	from := MustContext([]Tag{"medical", "ann"}, nil)
	to := MustContext(nil, []Tag{"ann"})
	if err := p.AuthoriseTransition(from, to); err != nil {
		t.Fatalf("owner transition denied: %v", err)
	}
}

func TestPrivilegesUnionRestrict(t *testing.T) {
	a := Privileges{RemoveSecrecy: MustLabel("x"), AddIntegrity: MustLabel("y")}
	b := Privileges{RemoveSecrecy: MustLabel("z")}
	u := a.Union(b)
	if !u.RemoveSecrecy.Equal(MustLabel("x", "z")) {
		t.Errorf("union RemoveSecrecy = %v", u.RemoveSecrecy)
	}
	r := u.Restrict(a)
	if !r.Equal(a) {
		t.Errorf("restrict(union, a) = %v, want %v", r, a)
	}
	if !NoPrivileges.IsEmpty() {
		t.Error("NoPrivileges must be empty")
	}
	if u.IsEmpty() {
		t.Error("non-trivial union must not be empty")
	}
}

// Property: a transition authorised by restricted privileges is always
// authorised by the unrestricted set (delegation never amplifies).
func TestPrivilegePropertyRestrictWeakens(t *testing.T) {
	if err := quick.Check(func(p, q Privileges, from, to SecurityContext) bool {
		if p.Restrict(q).AuthoriseTransition(from, to) == nil {
			return p.AuthoriseTransition(from, to) == nil
		}
		return true
	}, nil); err != nil {
		t.Error("restricted privileges authorised more than the original:", err)
	}
}

// Property: identity transitions are always authorised, and any authorised
// transition is reversible only with the mirrored privileges.
func TestPrivilegePropertyIdentity(t *testing.T) {
	if err := quick.Check(func(p Privileges, c SecurityContext) bool {
		return p.AuthoriseTransition(c, c) == nil
	}, nil); err != nil {
		t.Error("identity transition denied:", err)
	}
}

// Property: OwnerPrivileges over the union of two tag sets equals the union
// of the OwnerPrivileges.
func TestPrivilegePropertyOwnerDistributes(t *testing.T) {
	if err := quick.Check(func(a, b Label) bool {
		lhs := OwnerPrivileges(a.Union(b).Tags()...)
		rhs := OwnerPrivileges(a.Tags()...).Union(OwnerPrivileges(b.Tags()...))
		return lhs.Equal(rhs)
	}, nil); err != nil {
		t.Error("owner privileges do not distribute over union:", err)
	}
}

func TestPrivilegesString(t *testing.T) {
	p := Privileges{RemoveSecrecy: MustLabel("ann")}
	want := "S+∅ S-{ann} I+∅ I-∅"
	if got := p.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
