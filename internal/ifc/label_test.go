package ifc

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewLabelSortsAndDeduplicates(t *testing.T) {
	l := MustLabel("medical", "ann", "medical", "zeb", "ann")
	want := []Tag{"ann", "medical", "zeb"}
	if got := l.Tags(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Tags() = %v, want %v", got, want)
	}
	if l.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", l.Len())
	}
}

func TestNewLabelRejectsInvalidTags(t *testing.T) {
	tests := []struct {
		name string
		tag  Tag
	}{
		{"empty", ""},
		{"space", "has space"},
		{"comma", "a,b"},
		{"brace-open", "{x"},
		{"brace-close", "x}"},
		{"control", "a\tb"},
		{"newline", "a\nb"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewLabel(tt.tag); err == nil {
				t.Fatalf("NewLabel(%q) succeeded, want error", tt.tag)
			}
		})
	}
}

func TestLabelZeroValue(t *testing.T) {
	var l Label
	if !l.IsEmpty() {
		t.Fatal("zero label should be empty")
	}
	if !l.Subset(MustLabel("a")) {
		t.Fatal("empty label must be a subset of everything")
	}
	if got := l.String(); got != "∅" {
		t.Fatalf("String() = %q, want ∅", got)
	}
	if l.Has("a") {
		t.Fatal("empty label should not contain tags")
	}
}

func TestLabelSubset(t *testing.T) {
	tests := []struct {
		name string
		a, b Label
		want bool
	}{
		{"empty-in-empty", EmptyLabel, EmptyLabel, true},
		{"empty-in-nonempty", EmptyLabel, MustLabel("a"), true},
		{"nonempty-in-empty", MustLabel("a"), EmptyLabel, false},
		{"equal", MustLabel("a", "b"), MustLabel("a", "b"), true},
		{"proper", MustLabel("a"), MustLabel("a", "b"), true},
		{"superset", MustLabel("a", "b"), MustLabel("a"), false},
		{"disjoint", MustLabel("a"), MustLabel("b"), false},
		{"interleaved", MustLabel("a", "c"), MustLabel("a", "b", "c", "d"), true},
		{"missing-middle", MustLabel("a", "c"), MustLabel("a", "b", "d"), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Subset(tt.b); got != tt.want {
				t.Fatalf("%v.Subset(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestLabelSetOperations(t *testing.T) {
	a := MustLabel("medical", "ann")
	b := MustLabel("medical", "stats")

	if got, want := a.Union(b), MustLabel("ann", "medical", "stats"); !got.Equal(want) {
		t.Errorf("Union = %v, want %v", got, want)
	}
	if got, want := a.Intersect(b), MustLabel("medical"); !got.Equal(want) {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if got, want := a.Diff(b), MustLabel("ann"); !got.Equal(want) {
		t.Errorf("Diff = %v, want %v", got, want)
	}
	if got, want := a.With("consent"), MustLabel("ann", "consent", "medical"); !got.Equal(want) {
		t.Errorf("With = %v, want %v", got, want)
	}
	if got, want := a.Without("ann"), MustLabel("medical"); !got.Equal(want) {
		t.Errorf("Without = %v, want %v", got, want)
	}
}

func TestLabelImmutability(t *testing.T) {
	in := []Tag{"b", "a"}
	l, err := NewLabel(in...)
	if err != nil {
		t.Fatal(err)
	}
	in[0] = "mutated"
	if !l.Equal(MustLabel("a", "b")) {
		t.Fatal("label shares storage with caller slice")
	}
	got := l.Tags()
	got[0] = "mutated"
	if !l.Equal(MustLabel("a", "b")) {
		t.Fatal("Tags() exposes internal storage")
	}
}

func TestParseLabelRoundTrip(t *testing.T) {
	tests := []Label{
		EmptyLabel,
		MustLabel("a"),
		MustLabel("medical", "ann", "consent"),
		MustLabel("eu/personal-data", "hospital.example/hosp-dev"),
	}
	for _, l := range tests {
		got, err := ParseLabel(l.String())
		if err != nil {
			t.Fatalf("ParseLabel(%q): %v", l.String(), err)
		}
		if !got.Equal(l) {
			t.Fatalf("round trip of %v produced %v", l, got)
		}
	}
}

func TestParseLabelErrors(t *testing.T) {
	for _, s := range []string{"medical", "{a", "a}", "{a b}"} {
		if _, err := ParseLabel(s); err == nil {
			t.Errorf("ParseLabel(%q) succeeded, want error", s)
		}
	}
}

func TestParseLabelEmptyForms(t *testing.T) {
	for _, s := range []string{"{}", "∅", " {} "} {
		l, err := ParseLabel(s)
		if err != nil {
			t.Fatalf("ParseLabel(%q): %v", s, err)
		}
		if !l.IsEmpty() {
			t.Fatalf("ParseLabel(%q) = %v, want empty", s, l)
		}
	}
}

func TestLabelTextMarshalling(t *testing.T) {
	l := MustLabel("ann", "medical")
	text, err := l.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var back Label
	if err := back.UnmarshalText(text); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(l) {
		t.Fatalf("round trip produced %v, want %v", back, l)
	}
}

// genLabel produces a random label drawn from a small tag universe so that
// set relations are exercised (disjoint universes make subset trivially
// false almost always).
func genLabel(r *rand.Rand) Label {
	universe := []Tag{"a", "b", "c", "d", "e", "f", "g", "h"}
	n := r.Intn(len(universe) + 1)
	tags := make([]Tag, 0, n)
	for i := 0; i < n; i++ {
		tags = append(tags, universe[r.Intn(len(universe))])
	}
	return newLabelUnchecked(tags)
}

// Generate implements quick.Generator.
func (Label) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(genLabel(r))
}

func TestLabelPropertySubsetPartialOrder(t *testing.T) {
	// Reflexive.
	if err := quick.Check(func(a Label) bool { return a.Subset(a) }, nil); err != nil {
		t.Error("subset not reflexive:", err)
	}
	// Antisymmetric.
	if err := quick.Check(func(a, b Label) bool {
		if a.Subset(b) && b.Subset(a) {
			return a.Equal(b)
		}
		return true
	}, nil); err != nil {
		t.Error("subset not antisymmetric:", err)
	}
	// Transitive.
	if err := quick.Check(func(a, b, c Label) bool {
		if a.Subset(b) && b.Subset(c) {
			return a.Subset(c)
		}
		return true
	}, nil); err != nil {
		t.Error("subset not transitive:", err)
	}
}

func TestLabelPropertyLatticeLaws(t *testing.T) {
	// Union is the least upper bound: both operands flow into it.
	if err := quick.Check(func(a, b Label) bool {
		u := a.Union(b)
		return a.Subset(u) && b.Subset(u)
	}, nil); err != nil {
		t.Error("union not an upper bound:", err)
	}
	// Intersection is the greatest lower bound.
	if err := quick.Check(func(a, b Label) bool {
		i := a.Intersect(b)
		return i.Subset(a) && i.Subset(b)
	}, nil); err != nil {
		t.Error("intersection not a lower bound:", err)
	}
	// Commutativity.
	if err := quick.Check(func(a, b Label) bool {
		return a.Union(b).Equal(b.Union(a)) && a.Intersect(b).Equal(b.Intersect(a))
	}, nil); err != nil {
		t.Error("set operations not commutative:", err)
	}
	// Absorption: a ∪ (a ∩ b) = a.
	if err := quick.Check(func(a, b Label) bool {
		return a.Union(a.Intersect(b)).Equal(a)
	}, nil); err != nil {
		t.Error("absorption law violated:", err)
	}
	// Diff then union restores a superset relationship: (a \ b) ∪ (a ∩ b) = a.
	if err := quick.Check(func(a, b Label) bool {
		return a.Diff(b).Union(a.Intersect(b)).Equal(a)
	}, nil); err != nil {
		t.Error("diff/intersect do not partition:", err)
	}
}

func TestLabelPropertyStringParseRoundTrip(t *testing.T) {
	if err := quick.Check(func(a Label) bool {
		parsed, err := ParseLabel(a.String())
		return err == nil && parsed.Equal(a)
	}, nil); err != nil {
		t.Error("string/parse round trip failed:", err)
	}
}

func TestLabelTagsSorted(t *testing.T) {
	if err := quick.Check(func(a Label) bool {
		tags := a.Tags()
		return sort.SliceIsSorted(tags, func(i, j int) bool { return tags[i] < tags[j] })
	}, nil); err != nil {
		t.Error("Tags() not sorted:", err)
	}
}
