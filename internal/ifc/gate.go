package ifc

import (
	"errors"
	"fmt"
)

// A Gate is a trusted bridge between two security context domains, the
// declassifier/endorser pattern of Fig. 3: it reads data in one context,
// applies a mandatory transformation (anonymisation, format sanitising,
// time-based release, ...), and re-emits the result in another context that
// an ordinary flow could never reach.
//
// The paper's Fig. 5 (Device Input Sanitiser, an endorser) and Fig. 6
// (Statistics Generator, a declassifier) are both instances of Gate.
type Gate struct {
	// Name identifies the gate in audit records.
	Name string
	// Input is the security context in which the gate reads. Sources must
	// be able to flow to Input.
	Input SecurityContext
	// Output is the security context in which the gate emits. Output must
	// be able to flow to the destinations.
	Output SecurityContext
	// Transform is the mandatory processing applied while crossing domains.
	// A gate with a nil Transform passes data through unchanged, which is
	// legitimate e.g. for time-based release gates whose checks live in
	// Guard.
	Transform func(data []byte) ([]byte, error)
	// Guard, when non-nil, is consulted before each crossing; returning an
	// error vetoes the crossing (e.g. "data not yet authorised for
	// release", Section 6).
	Guard func() error
}

// ErrGateRefused is the sentinel returned (wrapped) when a gate's guard
// vetoes a crossing.
var ErrGateRefused = errors.New("ifc: gate refused crossing")

// Kind classifies the gate by how Output differs from Input.
func (g *Gate) Kind() GateKind {
	declass := !g.Input.Secrecy.Subset(g.Output.Secrecy)
	endorse := !g.Output.Integrity.Subset(g.Input.Integrity)
	switch {
	case declass && endorse:
		return GateDeclassifierEndorser
	case declass:
		return GateDeclassifier
	case endorse:
		return GateEndorser
	default:
		return GatePassthrough
	}
}

// GateKind classifies gates. Values start at 1 so the zero value is
// detectably unset.
type GateKind int

// Gate kinds.
const (
	GatePassthrough GateKind = iota + 1
	GateDeclassifier
	GateEndorser
	GateDeclassifierEndorser
)

// String implements fmt.Stringer.
func (k GateKind) String() string {
	switch k {
	case GatePassthrough:
		return "passthrough"
	case GateDeclassifier:
		return "declassifier"
	case GateEndorser:
		return "endorser"
	case GateDeclassifierEndorser:
		return "declassifier+endorser"
	default:
		return fmt.Sprintf("GateKind(%d)", int(k))
	}
}

// RequiredPrivileges returns the privilege sets an entity must hold to
// operate this gate, i.e. to transition from Input to Output.
func (g *Gate) RequiredPrivileges() Privileges {
	return Privileges{
		AddSecrecy:      g.Output.Secrecy.Diff(g.Input.Secrecy),
		RemoveSecrecy:   g.Input.Secrecy.Diff(g.Output.Secrecy),
		AddIntegrity:    g.Output.Integrity.Diff(g.Input.Integrity),
		RemoveIntegrity: g.Input.Integrity.Diff(g.Output.Integrity),
	}
}

// Cross moves data through the gate on behalf of operator: it verifies the
// operator may perform the Input→Output transition, consults the guard,
// applies the transform, and returns the transformed bytes. The caller
// remains responsible for checking the flow from the actual source into
// g.Input and from g.Output to the actual destination.
func (g *Gate) Cross(operator *Entity, data []byte) ([]byte, error) {
	if err := operator.AuthoriseTransition(g.Input, g.Output); err != nil {
		return nil, fmt.Errorf("gate %q: operator %q: %w", g.Name, operator.ID(), err)
	}
	if g.Guard != nil {
		if err := g.Guard(); err != nil {
			return nil, fmt.Errorf("gate %q: %w: %w", g.Name, ErrGateRefused, err)
		}
	}
	if g.Transform == nil {
		return data, nil
	}
	out, err := g.Transform(data)
	if err != nil {
		return nil, fmt.Errorf("gate %q: transform: %w", g.Name, err)
	}
	return out, nil
}

// Pipe routes data from src through the gate to dst, enforcing both
// surrounding flows. It implements the full Fig. 5 pattern in one call:
// src → [gate input ctx, transform, gate output ctx] → dst.
func (g *Gate) Pipe(operator *Entity, src, dst SecurityContext, data []byte) ([]byte, error) {
	if err := EnforceFlow(src, g.Input); err != nil {
		return nil, fmt.Errorf("gate %q: inbound: %w", g.Name, err)
	}
	out, err := g.Cross(operator, data)
	if err != nil {
		return nil, err
	}
	if err := EnforceFlow(g.Output, dst); err != nil {
		return nil, fmt.Errorf("gate %q: outbound: %w", g.Name, err)
	}
	return out, nil
}
