// Package ifc implements the decentralised Information Flow Control model
// described in Section 6 of "Policy-driven middleware for a legally-compliant
// Internet of Things" (Middleware 2016).
//
// Entities (processes, data items, devices, services) carry a security
// context: a pair of labels, S for secrecy (where data may flow to, per
// Bell-LaPadula) and I for integrity (where data may flow from, per Biba).
// A label is a set of tags, each tag naming one security concern, for
// example S = {medical, ann} or I = {hosp-dev, consent}.
//
// Data may flow from entity A to entity B if and only if
//
//	S(A) ⊆ S(B)  and  I(B) ⊆ I(A)
//
// that is, towards equally or more constrained entities. Entities holding
// the appropriate privileges may change their own labels: removing a
// secrecy tag declassifies, adding an integrity tag endorses. Created
// entities inherit the labels of their creator but never its privileges;
// privileges must be passed explicitly.
//
// The model is deliberately flat (Section 10.2 of the paper): tags are
// opaque names with no built-in hierarchy, so policy can apply directly
// across administrative domains without imposed structure.
package ifc
