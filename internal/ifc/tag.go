package ifc

import (
	"errors"
	"fmt"
	"strings"
)

// A Tag names a single security concern, such as "medical", "consent", or a
// federated, namespaced concern such as "eu/personal-data". Tags are opaque:
// the IFC model attaches no meaning to their internal structure. Namespacing
// conventions (see package names) exist so that independently administered
// domains do not collide.
type Tag string

// ErrEmptyTag is returned when a tag with no content is supplied.
var ErrEmptyTag = errors.New("ifc: empty tag")

// ErrInvalidTag is returned when a tag contains forbidden characters.
var ErrInvalidTag = errors.New("ifc: invalid tag")

// maxTagLen bounds tag names so labels stay cheap to compare and transmit.
const maxTagLen = 256

// Valid reports whether the tag is well formed: non-empty, at most 256
// bytes, and free of whitespace, control characters, and the label
// delimiters '{', '}' and ','.
func (t Tag) Valid() bool {
	return t.Validate() == nil
}

// Validate returns nil if the tag is well formed, or an error describing
// the first problem found.
func (t Tag) Validate() error {
	if len(t) == 0 {
		return ErrEmptyTag
	}
	if len(t) > maxTagLen {
		return fmt.Errorf("%w: %q exceeds %d bytes", ErrInvalidTag, truncate(string(t), 32), maxTagLen)
	}
	for i := 0; i < len(t); i++ {
		c := t[i]
		switch {
		case c <= ' ' || c == 0x7f:
			return fmt.Errorf("%w: %q contains whitespace or control byte at offset %d", ErrInvalidTag, truncate(string(t), 32), i)
		case c == '{' || c == '}' || c == ',':
			return fmt.Errorf("%w: %q contains reserved delimiter %q", ErrInvalidTag, truncate(string(t), 32), string(c))
		}
	}
	return nil
}

// Namespace returns the portion of the tag before the last '/', or "" when
// the tag is not namespaced. For example Tag("hospital.example/medical")
// has namespace "hospital.example".
func (t Tag) Namespace() string {
	i := strings.LastIndexByte(string(t), '/')
	if i < 0 {
		return ""
	}
	return string(t[:i])
}

// Base returns the portion of the tag after the last '/', or the whole tag
// when it is not namespaced.
func (t Tag) Base() string {
	i := strings.LastIndexByte(string(t), '/')
	return string(t[i+1:])
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
