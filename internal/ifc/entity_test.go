package ifc

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestEntityContextTransitions(t *testing.T) {
	e := NewEntity("sanitiser", MustContext([]Tag{"medical", "zeb"}, []Tag{"zeb-dev", "consent"}))
	target := MustContext([]Tag{"medical", "zeb"}, []Tag{"hosp-dev", "consent"})

	if err := e.SetContext(target); err == nil {
		t.Fatal("context change without privileges must fail")
	}
	if err := e.GrantPrivileges(Privileges{
		AddIntegrity:    MustLabel("hosp-dev"),
		RemoveIntegrity: MustLabel("zeb-dev"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.SetContext(target); err != nil {
		t.Fatalf("authorised transition failed: %v", err)
	}
	if !e.Context().Equal(target) {
		t.Fatalf("context = %v, want %v", e.Context(), target)
	}
}

func TestPassiveEntityRestrictions(t *testing.T) {
	data := NewPassiveEntity("reading-1", MustContext([]Tag{"medical"}, nil))
	if data.Active() {
		t.Fatal("passive entity reported active")
	}
	if err := data.GrantPrivileges(OwnerPrivileges("medical")); err == nil {
		t.Fatal("granting privileges to passive entity must fail")
	}
	if err := data.SetContext(SecurityContext{}); err == nil {
		t.Fatal("passive entity must not change context")
	}
}

func TestSpawnInheritsLabelsNotPrivileges(t *testing.T) {
	parent := NewEntity("parent", MustContext([]Tag{"medical", "ann"}, []Tag{"consent"}))
	if err := parent.GrantPrivileges(OwnerPrivileges("ann")); err != nil {
		t.Fatal(err)
	}

	child := parent.Spawn("child", true)
	if !child.Context().Equal(parent.Context()) {
		t.Errorf("child context %v, want %v", child.Context(), parent.Context())
	}
	if !child.Privileges().IsEmpty() {
		t.Error("child must not inherit privileges")
	}

	file := parent.Spawn("file", false)
	if file.Active() {
		t.Error("spawned passive entity reported active")
	}
	if !file.Context().Equal(parent.Context()) {
		t.Errorf("file context %v, want %v", file.Context(), parent.Context())
	}
}

func TestEntityFlowTo(t *testing.T) {
	ann := NewEntity("ann-device", MustContext([]Tag{"medical", "ann"}, []Tag{"hosp-dev", "consent"}))
	annAnalyser := NewEntity("ann-analyser", MustContext([]Tag{"medical", "ann"}, []Tag{"hosp-dev", "consent"}))
	zeb := NewEntity("zeb-device", MustContext([]Tag{"medical", "zeb"}, []Tag{"zeb-dev", "consent"}))

	if err := ann.FlowTo(annAnalyser); err != nil {
		t.Fatalf("Ann's flow denied: %v", err)
	}
	if err := zeb.FlowTo(annAnalyser); !errors.Is(err, ErrFlowDenied) {
		t.Fatalf("Zeb's flow = %v, want ErrFlowDenied", err)
	}
}

func TestDropPrivileges(t *testing.T) {
	e := NewEntity("e", SecurityContext{})
	if err := e.GrantPrivileges(OwnerPrivileges("a", "b")); err != nil {
		t.Fatal(err)
	}
	e.DropPrivileges(OwnerPrivileges("a"))
	want := OwnerPrivileges("b")
	if !e.Privileges().Equal(want) {
		t.Fatalf("privileges = %v, want %v", e.Privileges(), want)
	}
}

func TestEntityConcurrentAccess(t *testing.T) {
	e := NewEntity("concurrent", SecurityContext{})
	if err := e.GrantPrivileges(OwnerPrivileges("t")); err != nil {
		t.Fatal(err)
	}
	tagged := MustContext([]Tag{"t"}, nil)

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				_ = e.SetContext(tagged)
				_ = e.SetContext(SecurityContext{})
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				ctx := e.Context()
				// The context must always be one of the two legal states.
				if !ctx.Equal(tagged) && !ctx.Equal(SecurityContext{}) {
					t.Error("observed torn context:", ctx)
					return
				}
				_ = e.Privileges()
			}
		}()
	}
	wg.Wait()
}

func TestEntityString(t *testing.T) {
	e := NewEntity("ann-device", MustContext([]Tag{"medical"}, nil))
	want := fmt.Sprintf("entity %q S={medical} I=∅", "ann-device")
	if got := e.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
