package ifc

// This file provides static analyses over security contexts that the
// middleware uses when planning or validating component chains: whether a
// chain is flow-feasible end-to-end, where a gate would be required, and
// how far "label creep" (Section 6) has progressed along a path.

// ChainCheck reports, for a proposed chain of security contexts, the first
// hop at which the flow rule fails, or -1 if the whole chain is feasible
// without any gates. Contexts are in data-flow order.
func ChainCheck(chain []SecurityContext) int {
	for i := 0; i+1 < len(chain); i++ {
		if !chain[i].CanFlowTo(chain[i+1]) {
			return i
		}
	}
	return -1
}

// ChainFeasible reports whether data can flow down the whole chain under
// the plain flow rule (no declassification or endorsement).
func ChainFeasible(chain []SecurityContext) bool {
	return ChainCheck(chain) == -1
}

// RequiredGates returns, for each infeasible hop in the chain, a gate
// specification that would bridge it: input at the upstream context and
// output at the downstream context. The middleware uses this to insert
// declassifiers/endorsers automatically when composing services
// (Section 8.1: "transparent and dynamic system chain management").
func RequiredGates(chain []SecurityContext) []Gate {
	var gates []Gate
	for i := 0; i+1 < len(chain); i++ {
		if chain[i].CanFlowTo(chain[i+1]) {
			continue
		}
		gates = append(gates, Gate{
			Name:   "auto-gate",
			Input:  chain[i],
			Output: chain[i+1],
		})
	}
	return gates
}

// Creep measures label creep along a path of contexts the same datum has
// traversed: the number of secrecy tags accumulated beyond the origin's.
// Monotonically growing secrecy is the expected cost of flowing into ever
// more constrained domains; large creep signals that a declassifier is
// overdue.
func Creep(path []SecurityContext) int {
	if len(path) == 0 {
		return 0
	}
	return path[len(path)-1].Secrecy.Diff(path[0].Secrecy).Len()
}

// ReachableDomain returns the most permissive context data starting at src
// can occupy after flowing through any subset of the given contexts without
// gates. Because flows only ever add secrecy constraints and shed integrity
// guarantees, the reachable frontier is computed by a fixed point over the
// candidate contexts.
func ReachableDomain(src SecurityContext, candidates []SecurityContext) []SecurityContext {
	reachable := []SecurityContext{src}
	added := true
	for added {
		added = false
		for _, c := range candidates {
			if containsContext(reachable, c) {
				continue
			}
			for _, r := range reachable {
				if r.CanFlowTo(c) {
					reachable = append(reachable, c)
					added = true
					break
				}
			}
		}
	}
	return reachable
}

func containsContext(list []SecurityContext, c SecurityContext) bool {
	for _, x := range list {
		if x.Equal(c) {
			return true
		}
	}
	return false
}
