package ifc

import (
	"fmt"
	"sync"
)

// An EntityID identifies a labelled entity. IDs are assigned by whichever
// subsystem hosts the entity (kernel object IDs, component addresses, data
// item hashes); the IFC layer treats them as opaque.
type EntityID string

// An Entity is anything that carries a security context: active entities
// (processes, components) also hold privileges, while passive entities
// (files, messages, data items) hold only labels.
//
// Entity is safe for concurrent use. Label reads are on the hot path of
// every flow check, so they take only an RLock and return immutable labels.
type Entity struct {
	id     EntityID
	active bool

	mu    sync.RWMutex
	ctx   SecurityContext
	privs Privileges
	// ctxGen advances on every effective context change; layers that cache
	// decisions derived from this entity's context (channel legality in
	// sbus) stamp them with it, so an unchanged generation proves the cached
	// decision is still about the current context.
	ctxGen uint64
	// privGen advances on every privilege change; cached transition
	// decisions are stamped with it so a grant or revoke instantly retires
	// every decision derived from the old privilege sets.
	privGen uint64
	trans   map[transKey]transEntry
}

// transKey identifies a from→to context transition by the shared interned
// label records of the labels involved (secrecy, integrity and the two
// obligation facets on each side).
type transKey struct {
	fs, fi, fj, fp *labelRec
	ts, ti, tj, tp *labelRec
}

// transEntry is one cached transition authorisation, valid only while the
// entity's privilege generation still matches.
type transEntry struct {
	gen uint64
	err error
}

// maxTransCache bounds the per-entity transition cache.
const maxTransCache = 64

// NewEntity creates an active entity (one that can hold privileges and
// change its own context) with the given initial security context.
func NewEntity(id EntityID, ctx SecurityContext) *Entity {
	return &Entity{id: id, active: true, ctx: ctx}
}

// NewPassiveEntity creates a passive entity (pure data). Passive entities
// never hold privileges and their context is fixed at creation: relabelling
// data requires copying it through an active entity, exactly as in the
// paper's model where only active entities change security contexts.
func NewPassiveEntity(id EntityID, ctx SecurityContext) *Entity {
	return &Entity{id: id, active: false, ctx: ctx}
}

// ID returns the entity's identifier.
func (e *Entity) ID() EntityID { return e.id }

// Active reports whether the entity is active (may hold privileges).
func (e *Entity) Active() bool { return e.active }

// Context returns the entity's current security context.
func (e *Entity) Context() SecurityContext {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.ctx
}

// ContextAndGen returns the entity's current security context together with
// its context generation, read atomically. The generation advances on every
// effective SetContext, so a decision derived from the returned context may
// be cached stamped with the returned generation: as long as the generation
// is unchanged, the decision still describes the entity's live context.
func (e *Entity) ContextAndGen() (SecurityContext, uint64) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.ctx, e.ctxGen
}

// Privileges returns the entity's current privilege sets.
func (e *Entity) Privileges() Privileges {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.privs
}

// GrantPrivileges adds the given privileges to the entity. Only active
// entities may hold privileges.
func (e *Entity) GrantPrivileges(p Privileges) error {
	if !e.active {
		return fmt.Errorf("ifc: cannot grant privileges to passive entity %q", e.id)
	}
	e.mu.Lock()
	e.privs = e.privs.Union(p)
	e.privGen++
	e.mu.Unlock()
	InvalidateFlowCache()
	return nil
}

// DropPrivileges removes the given privileges from the entity, a voluntary
// reduction that needs no authorisation.
func (e *Entity) DropPrivileges(p Privileges) {
	e.mu.Lock()
	e.privs = Privileges{
		AddSecrecy:      e.privs.AddSecrecy.Diff(p.AddSecrecy),
		RemoveSecrecy:   e.privs.RemoveSecrecy.Diff(p.RemoveSecrecy),
		AddIntegrity:    e.privs.AddIntegrity.Diff(p.AddIntegrity),
		RemoveIntegrity: e.privs.RemoveIntegrity.Diff(p.RemoveIntegrity),
	}
	e.privGen++
	e.mu.Unlock()
	InvalidateFlowCache()
}

// SetContext atomically transitions the entity to a new security context,
// verifying the transition against the entity's privileges. This is the
// declassification/endorsement primitive: a declassifier calls SetContext
// with a smaller secrecy label, an endorser with a larger integrity label.
func (e *Entity) SetContext(to SecurityContext) error {
	if !e.active {
		return fmt.Errorf("ifc: passive entity %q cannot change its security context", e.id)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.authoriseLocked(e.ctx, to); err != nil {
		return fmt.Errorf("entity %q: %w", e.id, err)
	}
	if !e.ctx.Equal(to) {
		e.ctx = to
		e.ctxGen++
	}
	return nil
}

// AuthoriseTransition checks whether the entity's current privileges permit
// a from→to context transition, serving repeated checks from a small
// privilege-generation-stamped cache. Granting or dropping privileges
// advances the generation, so a previously cached deny (or allow) is
// re-derived against the new privilege sets on the next check.
func (e *Entity) AuthoriseTransition(from, to SecurityContext) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.authoriseLocked(from, to)
}

// authoriseLocked implements the cached transition check; e.mu must be held
// for writing.
func (e *Entity) authoriseLocked(from, to SecurityContext) error {
	k := transKey{
		fs: from.Secrecy.rec, fi: from.Integrity.rec,
		fj: from.Jurisdiction.rec, fp: from.Purpose.rec,
		ts: to.Secrecy.rec, ti: to.Integrity.rec,
		tj: to.Jurisdiction.rec, tp: to.Purpose.rec,
	}
	if ent, ok := e.trans[k]; ok && ent.gen == e.privGen {
		return ent.err
	}
	err := e.privs.AuthoriseTransition(from, to)
	if e.trans == nil {
		e.trans = make(map[transKey]transEntry, 8)
	} else if len(e.trans) >= maxTransCache {
		clear(e.trans)
	}
	e.trans[k] = transEntry{gen: e.privGen, err: err}
	return err
}

// Spawn creates a child entity. Per the creation-flow rule the child
// inherits the parent's labels but none of its privileges.
func (e *Entity) Spawn(id EntityID, active bool) *Entity {
	ctx := e.Context()
	if active {
		return NewEntity(id, CreationContext(ctx))
	}
	return NewPassiveEntity(id, CreationContext(ctx))
}

// FlowTo checks whether data may currently flow from e to dst, returning a
// *FlowError on denial.
func (e *Entity) FlowTo(dst *Entity) error {
	return EnforceFlow(e.Context(), dst.Context())
}

// String renders the entity with its context, e.g.
// `entity "ann-device" S={ann,medical} I={consent,hosp-dev}`.
func (e *Entity) String() string {
	return fmt.Sprintf("entity %q %s", e.id, e.Context())
}
