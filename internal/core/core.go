package core

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"lciot/internal/ac"
	"lciot/internal/attest"
	"lciot/internal/audit"
	"lciot/internal/cep"
	"lciot/internal/ctxmodel"
	"lciot/internal/device"
	"lciot/internal/gateway"
	"lciot/internal/ifc"
	"lciot/internal/names"
	"lciot/internal/obligation"
	"lciot/internal/policy"
	"lciot/internal/sbus"
	"lciot/internal/store"
	"lciot/internal/transport"
)

// PolicyEnginePrincipal is the identity under which the domain's policy
// engine issues reconfigurations; the domain ACL must authorise it.
const PolicyEnginePrincipal ifc.PrincipalID = "policy-engine"

// ErrAttestation is returned when federation is refused because the peer
// failed attestation.
var ErrAttestation = errors.New("core: peer failed attestation")

// Options configures a Domain.
type Options struct {
	// ACL governs the domain's control plane; nil denies everything except
	// the built-in policy-engine admin role.
	ACL *ac.ACL
	// Clock overrides time.Now (simulation/tests).
	Clock func() time.Time
	// Resolver, when non-nil, is consulted to validate foreign tags at
	// federation boundaries.
	Resolver *names.Resolver
	// OnAlert receives policy alert messages; nil discards them (they are
	// still audited).
	OnAlert func(message string)
	// OnConflict receives policy conflicts; nil discards (still counted).
	OnConflict func(policy.Conflict)
	// DataDir, when non-empty, makes the domain's audit log durable: a
	// segmented hash-chained store (internal/store) is opened under
	// DataDir/audit, recovered and chain-verified, the in-memory log is
	// primed with the recovered head, and every subsequent record is
	// persisted with batched group commit. Call Close on shutdown.
	DataDir string
	// Jurisdiction declares the jurisdictions this domain's machine
	// resides in. The declaration travels in the federation hello, where
	// peer buses gate egress of residency-constrained data against it
	// (and this bus gates its own egress against peers' declarations).
	Jurisdiction []ifc.Tag
	// Shards partitions the domain bus's routing state and dispatch
	// across that many shards (component-name hash; see internal/sbus).
	// Zero or one keeps the classic single-shard bus, where every
	// delivery is synchronous on the publisher's goroutine. Multi-core
	// hosts serving many components should set this near the core count
	// (see the README scaling guide).
	Shards int
}

// A Domain is one administrative domain of the IoT: a hospital, a home, a
// cloud provider.
type Domain struct {
	name  string
	bus   *sbus.Bus
	store *ctxmodel.Store
	log   *audit.Log
	cep   *cep.ShardedEngine
	eng   *policy.Engine

	devices  device.Registry
	tpm      *attest.TPM
	verifier *attest.Verifier
	resolver *names.Resolver
	clock    func() time.Time
	// auditStore is the disk tier of the audit log (nil without DataDir).
	auditStore *store.AuditStore

	// Obligation engine state (see obligations.go): the compiled per-tag
	// obligation table (swapped atomically on policy load), the sharded
	// retention-deadline scheduler, and the incrementally maintained
	// provenance graph that guides erasure.
	oblTab   atomic.Pointer[obligation.Table]
	oblSched *obligation.Scheduler
	prov     *audit.Graph

	mu        sync.Mutex
	alerts    []string
	conflicts []policy.Conflict
	onAlert   func(string)
	// oblPending queues scheduled deadlines announced by the audit sink
	// until the sweep loop turns them into ObligationScheduled records.
	oblPending []obligation.Entry
	// oblGateways are the gateways erasure propagates into.
	oblGateways []*gateway.Gateway

	// Shutdown state. closed flips first; Close then takes sweepMu once as
	// a barrier (mirroring sbus.Bus.Close's enqMu barrier), so any sweep
	// in flight finishes before the durable store goes away and any sweep
	// started after observes the flag and returns without touching it.
	closeOnce sync.Once
	closed    atomic.Bool
	closeErr  error
	// sweepMu serialises SweepObligations against Close.
	sweepMu sync.Mutex

	// Health cache (see health.go): healthMu guards the last built report
	// and the fingerprint of the subsystem state it was built from, so
	// polls only re-format details when something actually moved.
	healthMu    sync.Mutex
	healthFP    uint64
	healthInit  bool
	healthLast  [4]SubsystemHealth
	healthWorst HealthState

	// Diagnostic capture state (see diag.go): dataDir is retained so
	// degradation transitions can snapshot profiles under DataDir/diag;
	// diagInflight serialises captures; diagLastSkewNs debounces
	// skew-triggered captures.
	dataDir        string
	diagInflight   atomic.Bool
	diagLastSkewNs atomic.Int64
}

// NewDomain assembles a domain. The returned domain owns its bus, stores,
// engines and TPM.
func NewDomain(name string, opts Options) (*Domain, error) {
	clock := opts.Clock
	if clock == nil {
		clock = time.Now
	}
	acl := opts.ACL
	if acl == nil {
		acl = &ac.ACL{}
	}
	// The policy engine must always be able to reconfigure its own domain.
	acl.DefineRole(ac.Role{
		Name:   "domain-policy-engine",
		Grants: []ac.Permission{{Action: "*", Resource: "**"}},
	})
	if err := acl.Assign(ac.Assignment{
		Principal: PolicyEnginePrincipal, Role: "domain-policy-engine",
		Args: map[string]string{},
	}); err != nil {
		return nil, err
	}

	ctxStore := ctxmodel.NewStore(clock)
	log := audit.NewLog(clock)
	var auditStore *store.AuditStore
	if opts.DataDir != "" {
		var err error
		auditStore, err = store.OpenAudit(filepath.Join(opts.DataDir, "audit"), store.Options{})
		if err != nil {
			return nil, fmt.Errorf("core: audit store: %w", err)
		}
		// Prime the fresh log with the recovered chain head and persist
		// everything it commits from here on: the tamper-evident chain is
		// contiguous across the restart.
		if err := auditStore.AttachLog(log); err != nil {
			auditStore.Close()
			return nil, fmt.Errorf("core: audit store: %w", err)
		}
	}
	bus := sbus.NewShardedBus(name, opts.Shards, acl, ctxStore, log)
	if opts.Resolver != nil {
		// Challenge 1: federated peers may advertise tags this domain has
		// never encountered. Admit an inbound context only when every tag
		// resolves in the global namespace (cached after first sight).
		resolver := opts.Resolver
		bus.SetAdmissionPolicy(func(ctx ifc.SecurityContext) error {
			requester := ifc.PrincipalID(name)
			if _, err := resolver.ResolveLabel(requester, ctx.Secrecy); err != nil {
				return err
			}
			_, err := resolver.ResolveLabel(requester, ctx.Integrity)
			return err
		})
	}

	tpm, err := attest.NewTPM(name)
	if err != nil {
		if auditStore != nil {
			auditStore.Close()
		}
		return nil, err
	}
	if err := tpm.Extend(0, []byte("lciot-domain:"+name)); err != nil {
		if auditStore != nil {
			auditStore.Close()
		}
		return nil, err
	}

	d := &Domain{
		name:       name,
		bus:        bus,
		store:      ctxStore,
		log:        log,
		tpm:        tpm,
		verifier:   attest.NewVerifier(1),
		resolver:   opts.Resolver,
		clock:      clock,
		onAlert:    opts.OnAlert,
		auditStore: auditStore,
		dataDir:    opts.DataDir,
		oblSched:   obligation.NewScheduler(time.Second, 16),
		prov:       &audit.Graph{},
	}
	if len(opts.Jurisdiction) > 0 {
		jur, err := ifc.NewLabel(opts.Jurisdiction...)
		if err != nil {
			if auditStore != nil {
				auditStore.Close()
			}
			return nil, fmt.Errorf("core: jurisdiction: %w", err)
		}
		bus.SetJurisdiction(jur)
	}
	// The obligation sink feeds the provenance graph and schedules
	// retention deadlines off every allowed flow (see obligations.go).
	log.AddSink(d.obligationSink)
	// Dispatch lanes track the bus's shard count: each shard dispatcher
	// feeds the CEP lane holding its components' patterns, and the policy
	// engine's trigger index is partitioned the same way, so the whole
	// detection → policy → obligation pipeline runs in parallel per shard.
	lanes := opts.Shards
	if lanes < 1 {
		lanes = 1
	}
	d.eng = policy.NewEngine(ctxStore, d.execute,
		policy.WithEngineClock(clock),
		policy.WithDispatchLanes(lanes),
		policy.WithConflictHandler(func(c policy.Conflict) {
			d.mu.Lock()
			d.conflicts = append(d.conflicts, c)
			d.mu.Unlock()
			if opts.OnConflict != nil {
				opts.OnConflict(c)
			}
		}),
	)
	d.cep = cep.NewShardedEngine(lanes, func(det cep.Detection) {
		// Erasure triggers first: a pattern like "subject-erasure" must
		// purge before any rule reacts to (and possibly re-propagates)
		// the detection. The sharded engine invokes this handler outside
		// its lane locks, so the purge inside eraseTag is deadlock-free.
		d.handleEraseTriggers(det.Pattern)
		for _, e := range d.eng.HandleDetection(det) {
			d.auditPolicyError(e)
		}
	})

	// Context changes feed the policy engine synchronously (deterministic
	// evaluation order); a rule that sets an attribute it triggers on must
	// converge through its own guard, as in the paper's feedback loop.
	ctxStore.AddHook(func(change ctxmodel.Change) {
		for _, e := range d.eng.HandleContextChange(change) {
			d.auditPolicyError(e)
		}
	})
	registerDomainMetrics(d)
	return d, nil
}

// Name returns the domain name.
func (d *Domain) Name() string { return d.name }

// Bus exposes the domain's messaging substrate.
func (d *Domain) Bus() *sbus.Bus { return d.bus }

// Store exposes the domain's context store.
func (d *Domain) Store() *ctxmodel.Store { return d.store }

// Log exposes the domain's audit log.
func (d *Domain) Log() *audit.Log { return d.log }

// AuditStore exposes the durable audit store (nil unless Options.DataDir
// was set).
func (d *Domain) AuditStore() *store.AuditStore { return d.auditStore }

// OffloadAudit moves the in-memory audit records to the disk tier: it
// waits until everything the log has committed is durable, then prunes
// the log. Without a DataDir it is a no-op returning 0.
func (d *Domain) OffloadAudit() (int, error) {
	if d.auditStore == nil {
		return 0, nil
	}
	return d.auditStore.Offload(d.log)
}

// Close flushes and closes the domain's durable resources. The domain
// remains usable for in-memory work afterwards, but nothing further is
// persisted. Close is idempotent and safe against concurrent Tick /
// SweepObligations: it waits out any in-flight sweep before closing the
// store, and later sweeps observe the closed flag and do nothing. Repeat
// calls return the first call's result.
func (d *Domain) Close() error {
	d.closeOnce.Do(func() {
		d.closed.Store(true)
		// Barrier: an in-flight sweep holds sweepMu; once we acquire and
		// release it, every subsequent sweep sees the closed flag before
		// touching the store.
		d.sweepMu.Lock()
		d.sweepMu.Unlock() //nolint:staticcheck // empty critical section is the barrier
		d.bus.Close()
		if d.auditStore == nil {
			return
		}
		d.log.Flush()
		d.closeErr = d.auditStore.Close()
	})
	return d.closeErr
}

// PolicyEngine exposes the domain's policy engine.
func (d *Domain) PolicyEngine() *policy.Engine { return d.eng }

// Devices exposes the domain's device registry.
func (d *Domain) Devices() *device.Registry { return &d.devices }

// TPM exposes the domain's trusted platform module.
func (d *Domain) TPM() *attest.TPM { return d.tpm }

// LoadPolicy parses and installs policy source: ECA rules go to the
// policy engine; obligation clauses are compiled into the obligation
// table, with retention deadlines for already-persisted data rescheduled
// from the durable store.
func (d *Domain) LoadPolicy(src string) error {
	set, err := policy.Parse(src)
	if err != nil {
		return err
	}
	// Compile before installing anything: a compile error must leave the
	// engine, the obligation table and the audit trail untouched — a
	// half-installed policy that the caller believes failed is worse than
	// either outcome. Loading *replaces* both halves: the rule set (as it
	// always did) and the obligation table, so removing a clause from the
	// source actually retires the duty.
	tab, err := obligation.Compile(set.Obligations)
	if err != nil {
		return err
	}
	d.eng.Load(set)
	d.log.Append(audit.Record{
		Kind: audit.Reconfiguration, Layer: audit.LayerPolicy, Domain: d.name,
		Note: fmt.Sprintf("policy loaded: %d rules, %d obligations", len(set.Rules), len(set.Obligations)),
	})
	return d.installObligations(tab)
}

// InstallGate installs a declassifier/endorser gate into the domain's bus
// (under the policy engine's authority) and audits the reconfiguration.
// Installation advances the gate registry's generation, invalidating every
// cached flow-routability decision, so a previously cached "no route"
// between two contexts is re-derived — and may flip to "bridgeable" — on
// the next check.
func (d *Domain) InstallGate(g *ifc.Gate) error {
	return d.bus.InstallGate(PolicyEnginePrincipal, g)
}

// RemoveGate removes an installed gate, again invalidating cached routes.
func (d *Domain) RemoveGate(name string) error {
	return d.bus.RemoveGate(PolicyEnginePrincipal, name)
}

// Gates exposes the domain's gate registry.
func (d *Domain) Gates() *ifc.GateRegistry { return d.bus.Gates() }

// RegisterPattern adds a CEP pattern whose detections drive policy.
// Patterns declaring their sources (cep.SourceAffine, as the built-ins
// do) are homed on the dispatch lane their sources hash to; undeclared
// or cross-lane patterns land in the broadcast set.
func (d *Domain) RegisterPattern(p cep.Pattern) {
	d.cep.Register(p)
}

// FeedEvent pushes one event into detection (and so, possibly, into
// policy-driven reconfiguration). Feeders whose sources live on
// different lanes run in parallel; the CEP engine locks per lane.
func (d *Domain) FeedEvent(e cep.Event) {
	d.cep.Feed(e)
}

// Tick advances time-driven machinery: CEP absence patterns, policy
// timers, break-glass expiry, and the obligation sweep (retention expiry
// and the erasure it triggers). Ticking a closed domain is a no-op.
func (d *Domain) Tick() {
	if d.closed.Load() {
		return
	}
	d.cep.Advance(d.clock())
	for _, e := range d.eng.Tick() {
		d.auditPolicyError(e)
	}
	d.SweepObligations()
}

// Alerts returns the policy alerts raised so far.
func (d *Domain) Alerts() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, len(d.alerts))
	copy(out, d.alerts)
	return out
}

// Conflicts returns the policy conflicts observed so far.
func (d *Domain) Conflicts() []policy.Conflict {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]policy.Conflict, len(d.conflicts))
	copy(out, d.conflicts)
	return out
}

// auditPolicyError records a failed policy evaluation or action.
func (d *Domain) auditPolicyError(e policy.Error) {
	d.log.Append(audit.Record{
		Kind: audit.Reconfiguration, Layer: audit.LayerPolicy, Domain: d.name,
		Agent: PolicyEnginePrincipal, Note: "policy error: " + e.Error(),
	})
}

// execute is the policy-action executor: the junction where decisions
// become mechanism (Fig. 1's "enforcement point").
func (d *Domain) execute(a policy.Action) error {
	switch x := a.(type) {
	case policy.AlertAction:
		d.mu.Lock()
		d.alerts = append(d.alerts, x.Message)
		cb := d.onAlert
		d.mu.Unlock()
		d.log.Append(audit.Record{
			Kind: audit.Reconfiguration, Layer: audit.LayerPolicy, Domain: d.name,
			Agent: PolicyEnginePrincipal, Note: "alert: " + x.Message,
		})
		if cb != nil {
			cb(x.Message)
		}
		return nil
	case policy.ConnectAction:
		err := d.bus.Connect(PolicyEnginePrincipal, x.From, x.To)
		if err == nil {
			if _, active := d.eng.OverrideActive(); active {
				d.log.Append(audit.Record{
					Kind: audit.BreakGlass, Layer: audit.LayerPolicy, Domain: d.name,
					Src: ifc.EntityID(x.From), Dst: ifc.EntityID(x.To),
					Agent: PolicyEnginePrincipal,
					Note:  "connection established under break-glass override",
				})
			}
		}
		return err
	case policy.DisconnectAction:
		return d.bus.Disconnect(PolicyEnginePrincipal, x.From, x.To)
	case policy.SetContextAction:
		return d.bus.SetComponentContext(PolicyEnginePrincipal, x.Target, x.Ctx)
	case policy.GrantAction:
		return d.bus.GrantPrivileges(PolicyEnginePrincipal, x.Target, x.Privs)
	case policy.SetCtxAction:
		// The engine already applied the value to the context store; the
		// executor only audits the decision.
		d.log.Append(audit.Record{
			Kind: audit.Reconfiguration, Layer: audit.LayerPolicy, Domain: d.name,
			Agent: PolicyEnginePrincipal, Note: "context set: " + x.String(),
		})
		return nil
	case policy.QuarantineAction:
		return d.bus.Quarantine(PolicyEnginePrincipal, x.Target, true)
	case policy.ActuateAction:
		act, err := d.devices.Actuator(x.Device)
		if err != nil {
			return err
		}
		if err := act.Apply(x.Command, x.Value); err != nil {
			d.log.Append(audit.Record{
				Kind: audit.FlowDenied, Layer: audit.LayerPolicy, Domain: d.name,
				Dst: ifc.EntityID(x.Device), Agent: PolicyEnginePrincipal,
				Note: "actuation refused: " + err.Error(),
			})
			return err
		}
		d.log.Append(audit.Record{
			Kind: audit.Reconfiguration, Layer: audit.LayerPolicy, Domain: d.name,
			Dst: ifc.EntityID(x.Device), Agent: PolicyEnginePrincipal,
			Note: fmt.Sprintf("actuated %s %s=%g", x.Device, x.Command, x.Value),
		})
		return nil
	default:
		return fmt.Errorf("core: unknown action %T", a)
	}
}

// EnrollPeer registers a peer domain's TPM endorsement key so Federate can
// attest it (out-of-band provisioning in a real deployment).
func (d *Domain) EnrollPeer(name string, endorsementKey []byte) {
	d.verifier.Enroll(name, endorsementKey)
}

// Federate links this domain's bus to a peer over the network, after
// remote attestation of the peer's platform (Challenge 5: trusted
// enforcement before interaction). The attestation policy may pin PCR
// values and a geographic region.
func (d *Domain) Federate(network transport.Network, addr string,
	peer *attest.TPM, pol attest.Policy) (string, error) {
	if err := d.verifier.Attest(peer, []int{0}, pol); err != nil {
		d.log.Append(audit.Record{
			Kind: audit.FlowDenied, Layer: audit.LayerPolicy, Domain: d.name,
			Dst: ifc.EntityID(peer.DeviceID()), Note: "federation refused: " + err.Error(),
		})
		return "", fmt.Errorf("%w: %v", ErrAttestation, err)
	}
	peerName, err := d.bus.LinkTo(network, addr)
	if err != nil {
		return "", err
	}
	d.log.Append(audit.Record{
		Kind: audit.Reconfiguration, Layer: audit.LayerPolicy, Domain: d.name,
		Dst: ifc.EntityID(peerName), Note: "federated with peer domain (attested)",
	})
	return peerName, nil
}

// Serve accepts federation links from peers on the listener.
func (d *Domain) Serve(listener transport.Listener) { d.bus.Serve(listener) }

// LinkStatus snapshots the domain's cross-bus links: state (up /
// reconnecting / closed), egress queue depth and resume count per peer.
func (d *Domain) LinkStatus() []sbus.LinkStatus { return d.bus.LinkStatus() }

// LinkPeer dials a peer domain's bus, retrying with a linear backoff until
// the peer answers or the wait budget runs out — at boot, federated nodes
// come up in arbitrary order. Once established, the link self-heals (see
// sbus link protocol v2); LinkPeer only covers the initial dial. Unlike
// Federate it performs no attestation, which is what a deployment without
// provisioned TPM endorsement keys (e.g. the lciotd daemon) uses.
func (d *Domain) LinkPeer(network transport.Network, addr string, wait time.Duration) (string, error) {
	// Wall-clock deliberately, not d.clock(): the retry loop paces itself
	// with real sleeps, and a simulated domain clock would never move the
	// deadline.
	deadline := time.Now().Add(wait)
	for {
		peer, err := d.bus.LinkTo(network, addr)
		if err == nil {
			d.log.Append(audit.Record{
				Kind: audit.Reconfiguration, Layer: audit.LayerPolicy, Domain: d.name,
				Dst: ifc.EntityID(peer), Note: "federated with peer domain (unattested link)",
			})
			return peer, nil
		}
		if !time.Now().Before(deadline) {
			return "", fmt.Errorf("core: link to %s: %w", addr, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
