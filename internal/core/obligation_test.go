package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"lciot/internal/audit"
	"lciot/internal/cep"
	"lciot/internal/ctxmodel"
	"lciot/internal/ifc"
	"lciot/internal/msg"
	"lciot/internal/sbus"
)

const telemetryObligation = `
obligation "telemetry-retention" on telemetry {
  retain 1h;
  erase on "subject-erasure";
}
`

// telemetrySchema is the message type the obligation tests stream.
func telemetrySchema() *msg.Schema {
	return msg.MustSchema("telemetry", ifc.EmptyLabel,
		msg.Field{Name: "device", Type: msg.TString, Required: true},
		msg.Field{Name: "value", Type: msg.TFloat, Required: true},
	)
}

// obligationDomain builds a durable domain streaming telemetry-tagged
// data from sensor.out to sink.in.
func obligationDomain(t *testing.T, dir string, clock *testClock) (*Domain, *sbus.Component) {
	t.Helper()
	d, err := NewDomain("plant", Options{Clock: clock.Now, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	if err := d.LoadPolicy(telemetryObligation); err != nil {
		t.Fatal(err)
	}
	ctx := ifc.MustContext([]ifc.Tag{"telemetry"}, nil)
	src, err := d.Bus().Register("sensor", "plant", ctx, nil,
		sbus.EndpointSpec{Name: "out", Dir: sbus.Source, Schema: telemetrySchema()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Bus().Register("sink", "plant", ctx, nil,
		sbus.EndpointSpec{Name: "in", Dir: sbus.Sink, Schema: telemetrySchema()}); err != nil {
		t.Fatal(err)
	}
	if err := d.Bus().Connect(PolicyEnginePrincipal, "sensor.out", "sink.in"); err != nil {
		t.Fatal(err)
	}
	return d, src
}

// publishTelemetry streams n readings with device/metric/seq DataIDs.
func publishTelemetry(t *testing.T, src *sbus.Component, device string, n int) []string {
	t.Helper()
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		m := msg.New("telemetry").Set("device", msg.Str(device)).Set("value", msg.Float(float64(i)))
		m.DataID = fmt.Sprintf("%s/reading/%d", device, i)
		ids[i] = m.DataID
		if _, err := src.Publish("out", m); err != nil {
			t.Fatal(err)
		}
	}
	return ids
}

// TestRetentionSweepEndToEnd: data under a retention-limited tag is
// scheduled on ingest, swept after expiry, tombstoned in both audit
// tiers, and the chain plus the retention report prove it.
func TestRetentionSweepEndToEnd(t *testing.T) {
	clock := newTestClock()
	d, src := obligationDomain(t, t.TempDir(), clock)
	ids := publishTelemetry(t, src, "meter", 10)
	d.Log().Flush()
	d.SweepObligations() // drains the schedule announcements
	if got := d.ObligationBacklog(); got != 10 {
		t.Fatalf("backlog = %d, want 10", got)
	}

	// Nothing due yet: a sweep now erases nothing.
	if n := d.SweepObligations(); n != 0 {
		t.Fatalf("premature sweep executed %d", n)
	}
	clock.Advance(2 * time.Hour)
	cutoff := clock.Now()
	if n := d.SweepObligations(); n != 10 {
		t.Fatalf("sweep executed %d, want 10", n)
	}
	if got := d.ObligationBacklog(); got != 0 {
		t.Fatalf("backlog after sweep = %d", got)
	}

	// Both tiers: every telemetry record tombstoned, chains intact.
	if bad, err := d.Log().Verify(); err != nil {
		t.Fatalf("memory chain broken at %d: %v", bad, err)
	}
	if err := d.AuditStore().Sync(); err != nil {
		t.Fatal(err)
	}
	if bad, err := d.AuditStore().Verify(); err != nil {
		t.Fatalf("store chain broken at %d: %v", bad, err)
	}
	recs, err := d.AuditStore().Records(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	idSet := map[string]bool{}
	for _, id := range ids {
		idSet[id] = true
	}
	for _, r := range recs {
		if idSet[r.DataID] && !r.Redacted {
			t.Fatalf("record %d for %s not tombstoned", r.Seq, r.DataID)
		}
	}
	// The regulator-facing proof: all data under the tag older than the
	// cutoff is gone or tombstoned.
	rep := audit.RetentionReport(recs, "telemetry", cutoff)
	if !rep.Compliant {
		t.Fatalf("retention report not compliant: %+v", rep.Violations)
	}
	if rep.Tombstoned == 0 {
		t.Fatal("retention report saw no tombstones")
	}
	// Evidence records for every stage.
	for _, kind := range []audit.EventKind{
		audit.ObligationScheduled, audit.ObligationExecuted, audit.Redaction,
	} {
		if got := d.Log().Select(func(r audit.Record) bool { return r.Kind == kind }); len(got) == 0 {
			t.Fatalf("no %s evidence in the log", kind)
		}
	}
}

// TestSweepResumesFromWAL: kill the domain after scheduling (no sweep),
// reopen on the same data dir, and the rebuilt scheduler must carry out
// the expiry — the crash-mid-sweep resumption contract.
func TestSweepResumesFromWAL(t *testing.T) {
	dir := t.TempDir()
	clock := newTestClock()
	d, src := obligationDomain(t, dir, clock)
	publishTelemetry(t, src, "meter", 25)
	d.Log().Flush()
	if err := d.AuditStore().Sync(); err != nil {
		t.Fatal(err)
	}
	// No clean shutdown path: drop the domain without sweeping.
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	clock.Advance(2 * time.Hour)
	d2, _ := obligationDomain(t, dir, clock)
	if got := d2.ObligationBacklog(); got != 25 {
		t.Fatalf("rebuilt backlog = %d, want 25", got)
	}
	if n := d2.SweepObligations(); n != 25 {
		t.Fatalf("resumed sweep executed %d, want 25", n)
	}
	if err := d2.AuditStore().Sync(); err != nil {
		t.Fatal(err)
	}
	if bad, err := d2.AuditStore().Verify(); err != nil {
		t.Fatalf("chain broken at %d after resumed sweep: %v", bad, err)
	}
	recs, err := d2.AuditStore().Records(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep := audit.RetentionReport(recs, "telemetry", clock.Now())
	if !rep.Compliant {
		t.Fatalf("resumed sweep left violations: %d", len(rep.Violations))
	}
	// A second rebuild (reload the same policy) must not resurrect
	// deadlines for tombstoned data.
	if err := d2.LoadPolicy(telemetryObligation); err != nil {
		t.Fatal(err)
	}
	if got := d2.ObligationBacklog(); got != 0 {
		t.Fatalf("rebuild resurrected %d deadlines for erased data", got)
	}
}

// TestEraseOnEventPropagates: a "subject-erasure" detection erases the
// tag — provenance descendants included — and purges live state.
func TestEraseOnEventPropagates(t *testing.T) {
	clock := newTestClock()
	d, src := obligationDomain(t, t.TempDir(), clock)
	ids := publishTelemetry(t, src, "ann", 5)
	d.Log().Flush()

	// Live state derived from the subject.
	d.Store().Set("ann/heart-rate", ctxmodel.Number(72))
	d.Store().Set("bob/heart-rate", ctxmodel.Number(68))
	d.RegisterPattern(&cep.Threshold{
		PatternName: "spike", Types: []string{"hr"}, Count: 100, Window: time.Hour,
	})
	d.FeedEvent(cep.Event{Type: "hr", Source: "ann", Time: clock.Now(), Value: 72})
	d.FeedEvent(cep.Event{Type: "hr", Source: "bob", Time: clock.Now(), Value: 68})

	// The erasure trigger declared in the obligation clause.
	d.RegisterPattern(&cep.Threshold{
		PatternName: "subject-erasure", Types: []string{"erasure-request"}, Count: 1, Window: time.Hour,
	})
	d.FeedEvent(cep.Event{Type: "erasure-request", Source: "ann", Time: clock.Now(), Value: 0})

	// Context state for the subject is gone; unrelated subjects survive.
	if _, ok := d.Store().Get("ann/heart-rate"); ok {
		t.Fatal("erased subject's context attribute survived")
	}
	if _, ok := d.Store().Get("bob/heart-rate"); !ok {
		t.Fatal("unrelated subject's context attribute was purged")
	}
	// Every audited record of the erased data is tombstoned.
	d.Log().Flush()
	for _, r := range d.Log().Select(nil) {
		for _, id := range ids {
			if r.DataID == id && !r.Redacted {
				t.Fatalf("record %d for %s survived erasure", r.Seq, r.DataID)
			}
		}
	}
	if bad, err := d.Log().Verify(); err != nil {
		t.Fatalf("chain broken at %d after erasure: %v", bad, err)
	}
	// The scheduler no longer tracks the erased data.
	if got := d.ObligationBacklog(); got != 0 {
		t.Fatalf("backlog after erasure = %d", got)
	}
}

// TestErasurePropagationProperty is the erasure-propagation property test:
// under concurrent ingest, after erasing tag T no live query — context
// store, provenance-guided record scan, store range read — returns a
// non-tombstoned record derived from T's pre-erasure data. Run with -race.
func TestErasurePropagationProperty(t *testing.T) {
	clock := newTestClock()
	d, src := obligationDomain(t, t.TempDir(), clock)

	// Pre-erasure data for the subject.
	ids := publishTelemetry(t, src, "subject", 50)
	d.Log().Flush()
	erased := map[string]bool{}
	for _, id := range ids {
		erased[id] = true
	}

	// Concurrent ingest of *other* subjects while the erasure runs
	// (bounded and paced: the point is interleaving, not throughput).
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				select {
				case <-stop:
					return
				default:
				}
				m := msg.New("telemetry").Set("device", msg.Str("other")).Set("value", msg.Float(1))
				m.DataID = fmt.Sprintf("other-%d/reading/%d", g, i)
				if _, err := src.Publish("out", m); err != nil {
					return
				}
				time.Sleep(time.Millisecond)
			}
		}(g)
	}

	n := d.EraseTag("telemetry", "right-to-erasure request")
	close(stop)
	wg.Wait()
	if n < 50 {
		t.Fatalf("erasure covered %d data items, want >= 50", n)
	}

	// 1. Context store holds nothing under the subject.
	d.Store().Set("subject/x", ctxmodel.Number(1)) // sanity: deletable state works
	d.EraseData("telemetry", "subject/x", "cleanup")
	if _, ok := d.Store().Get("subject/x"); ok {
		t.Fatal("context attribute survived erasure")
	}

	// 2. No live (non-tombstoned) record in either tier references the
	// erased data.
	checkRecords := func(recs []audit.Record, tier string) {
		t.Helper()
		for _, r := range recs {
			if erased[r.DataID] && !r.Redacted {
				t.Fatalf("%s: record %d for erased %s is live", tier, r.Seq, r.DataID)
			}
		}
	}
	d.Log().Flush()
	checkRecords(d.Log().Select(nil), "memory")
	if err := d.AuditStore().Sync(); err != nil {
		t.Fatal(err)
	}
	recs, err := d.AuditStore().Records(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkRecords(recs, "store")

	// 3. Provenance: the erased data's descendants resolve only to
	// tombstoned records (the graph keeps topology — linkage is evidence —
	// but no live record backs it).
	for _, id := range ids[:5] {
		desc, err := d.Provenance().Descendants(id)
		if err != nil {
			continue
		}
		for _, node := range desc {
			for _, r := range recs {
				if r.DataID == node && erased[r.DataID] && !r.Redacted {
					t.Fatalf("descendant %s of erased %s backed by live record %d", node, id, r.Seq)
				}
			}
		}
	}

	// 4. Chains stay verifiable end to end in both tiers.
	if bad, err := d.Log().Verify(); err != nil {
		t.Fatalf("memory chain broken at %d: %v", bad, err)
	}
	if bad, err := d.AuditStore().Verify(); err != nil {
		t.Fatalf("store chain broken at %d: %v", bad, err)
	}
	// 5. The erasure left evidence.
	execs := d.Log().Select(func(r audit.Record) bool {
		return r.Kind == audit.ObligationExecuted && strings.Contains(r.Note, "right-to-erasure")
	})
	if len(execs) == 0 {
		t.Fatal("no ObligationExecuted evidence for the erasure request")
	}
}
