package core

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"lciot/internal/attest"
	"lciot/internal/audit"
	"lciot/internal/cep"
	"lciot/internal/ctxmodel"
	"lciot/internal/device"
	"lciot/internal/ifc"
	"lciot/internal/msg"
	"lciot/internal/names"
	"lciot/internal/policy"
	"lciot/internal/sbus"
	"lciot/internal/transport"
)

// testClock provides a controllable, monotonically increasing clock.
type testClock struct {
	mu  sync.Mutex
	now time.Time
}

func newTestClock() *testClock { return &testClock{now: time.Unix(1700000000, 0)} }

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func vitalsSchema() *msg.Schema {
	return msg.MustSchema("vitals", ifc.EmptyLabel,
		msg.Field{Name: "patient", Type: msg.TString, Required: true},
		msg.Field{Name: "heart-rate", Type: msg.TFloat, Required: true},
	)
}

func annCtx() ifc.SecurityContext {
	return ifc.MustContext([]ifc.Tag{"medical", "ann"}, []ifc.Tag{"hosp-dev", "consent"})
}

func newDomain(t *testing.T, clock *testClock) *Domain {
	t.Helper()
	d, err := NewDomain("hospital", Options{Clock: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

type recorder struct {
	mu   sync.Mutex
	msgs []*msg.Message
}

func (r *recorder) handler() sbus.Handler {
	return func(m *msg.Message, _ sbus.Delivery) {
		r.mu.Lock()
		defer r.mu.Unlock()
		r.msgs = append(r.msgs, m)
	}
}

func (r *recorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.msgs)
}

// TestFig7FullSystem is experiment E7: the complete home-monitoring system.
// Sensors stream vitals; the analyser's CEP detects an emergency; the
// policy engine alerts, actuates the sensor to sample faster, connects the
// analyser to the emergency service under a break-glass override, and the
// override auto-reverts.
func TestFig7FullSystem(t *testing.T) {
	clock := newTestClock()
	d := newDomain(t, clock)

	// Components: Ann's device (source), her analyser (sink), the
	// emergency service (initially unconnected sink).
	if _, err := d.Bus().Register("ann-device", "hospital", annCtx(), nil,
		sbus.EndpointSpec{Name: "out", Dir: sbus.Source, Schema: vitalsSchema()}); err != nil {
		t.Fatal(err)
	}
	analyserRec := &recorder{}
	if _, err := d.Bus().Register("ann-analyser", "hospital", annCtx(), analyserRec.handler(),
		sbus.EndpointSpec{Name: "in", Dir: sbus.Sink, Schema: vitalsSchema()},
		sbus.EndpointSpec{Name: "alerts", Dir: sbus.Source, Schema: vitalsSchema()}); err != nil {
		t.Fatal(err)
	}
	emergencyRec := &recorder{}
	if _, err := d.Bus().Register("emergency-service", "hospital", annCtx(), emergencyRec.handler(),
		sbus.EndpointSpec{Name: "in", Dir: sbus.Sink, Schema: vitalsSchema()}); err != nil {
		t.Fatal(err)
	}
	if err := d.Bus().Connect(PolicyEnginePrincipal, "ann-device.out", "ann-analyser.in"); err != nil {
		t.Fatal(err)
	}

	// Ann's sensor with an actuatable sampling interval.
	sensor := device.NewVitalsSensor("ann-sensor", 70, 42, clock.Now(), 10*time.Second)
	sensor.ScheduleEpisode(20, 40, 170)
	actuator := device.NewActuator("ann-sensor", map[string][2]float64{"sample-interval": {1, 3600}})
	d.Devices().RegisterActuator(actuator)

	// Detection: three heart-rate readings over 120 within a minute.
	d.RegisterPattern(&cep.Threshold{
		PatternName: "tachycardia",
		Match:       func(e cep.Event) bool { return e.Type == "heart-rate" && e.Value > 120 },
		Count:       3,
		Window:      10 * time.Minute,
	})

	// Policy: the Fig. 7 emergency response.
	if err := d.LoadPolicy(`
rule "emergency-response" priority 10 {
    on event "tachycardia"
    when not ctx.emergency
    do
        set emergency = true;
        alert "emergency detected for ann";
        breakglass 30m;
        connect "ann-analyser.alerts" -> "emergency-service.in";
        actuate "ann-sensor" "sample-interval" 1
}`); err != nil {
		t.Fatal(err)
	}
	d.Store().Set("emergency", ctxmodel.Bool(false))

	// Stream readings through detection.
	for i := 0; i < 45; i++ {
		r := sensor.Next()
		d.FeedEvent(cep.Event{Type: r.Metric, Source: r.DeviceID, Time: r.At, Value: r.Value})
	}

	// The emergency fired exactly once.
	alerts := d.Alerts()
	if len(alerts) != 1 || alerts[0] != "emergency detected for ann" {
		t.Fatalf("alerts = %v", alerts)
	}
	// The sensor was actuated to sample faster.
	if v, ok := actuator.State("sample-interval"); !ok || v != 1 {
		t.Fatalf("actuator state = %g, %v", v, ok)
	}
	// The emergency channel exists and an override is open.
	if _, active := d.PolicyEngine().OverrideActive(); !active {
		t.Fatal("break-glass override not active")
	}
	channels := d.Bus().Channels()
	if len(channels) != 2 {
		t.Fatalf("channels = %v", channels)
	}
	// The emergency connection is audited as break-glass.
	bg := d.Log().Select(func(r audit.Record) bool { return r.Kind == audit.BreakGlass })
	if len(bg) != 1 {
		t.Fatalf("break-glass records = %d", len(bg))
	}
	// Context reflects the emergency.
	if v, _ := d.Store().Get("emergency"); !v.Bool {
		t.Fatal("emergency flag not set")
	}

	// After the override window the connection is reverted.
	clock.Advance(31 * time.Minute)
	d.Tick()
	if _, active := d.PolicyEngine().OverrideActive(); active {
		t.Fatal("override still active after expiry")
	}
	channels = d.Bus().Channels()
	if len(channels) != 1 || !strings.HasPrefix(channels[0], "ann-device.out") {
		t.Fatalf("channels after revert = %v", channels)
	}
}

// TestFig1PolicyLoop is experiment E1: the full loop — policy determines
// enforcement, enforcement produces audit, audit demonstrates both the
// allowed and the prevented flows, and the chain is verifiable.
func TestFig1PolicyLoop(t *testing.T) {
	clock := newTestClock()
	d := newDomain(t, clock)
	if _, err := d.Bus().Register("sensor", "hospital", annCtx(), nil,
		sbus.EndpointSpec{Name: "out", Dir: sbus.Source, Schema: vitalsSchema()}); err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	if _, err := d.Bus().Register("analyser", "hospital", annCtx(), rec.handler(),
		sbus.EndpointSpec{Name: "in", Dir: sbus.Sink, Schema: vitalsSchema()}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Bus().Register("advertiser", "hospital", ifc.SecurityContext{}, nil,
		sbus.EndpointSpec{Name: "in", Dir: sbus.Sink, Schema: vitalsSchema()}); err != nil {
		t.Fatal(err)
	}

	// Policy connects sensor to analyser on a context trigger.
	if err := d.LoadPolicy(`
rule "provision" {
    on context provisioned
    when ctx.provisioned
    do connect "sensor.out" -> "analyser.in"
}`); err != nil {
		t.Fatal(err)
	}
	d.Store().Set("provisioned", ctxmodel.Bool(true))

	// The policy-driven connection happened.
	if len(d.Bus().Channels()) != 1 {
		t.Fatalf("channels = %v", d.Bus().Channels())
	}
	// The illegal connection is refused by the mechanism — even for the
	// fully AC-authorised policy engine, because IFC is data-centric.
	err := d.Bus().Connect(PolicyEnginePrincipal, "sensor.out", "advertiser.in")
	if !errors.Is(err, ifc.ErrFlowDenied) {
		t.Fatalf("advertiser connect = %v", err)
	}

	sensorComp, _ := d.Bus().Component("sensor")
	m := msg.New("vitals").Set("patient", msg.Str("ann")).Set("heart-rate", msg.Float(72))
	m.DataID = "reading-1"
	if _, err := sensorComp.Publish("out", m); err != nil {
		t.Fatal(err)
	}
	if rec.count() != 1 {
		t.Fatal("delivery missing")
	}

	// Audit closes the loop: report shows the denial, the allowed flow, and
	// an intact chain.
	rep := audit.Report(d.Log())
	if !rep.ChainIntact {
		t.Fatal("audit chain broken")
	}
	if rep.ByKind["flow-denied"] != 1 || rep.ByKind["flow-allowed"] != 1 {
		t.Fatalf("report = %+v", rep.ByKind)
	}
	// Provenance derived from the log shows where reading-1 went.
	g := audit.BuildGraph(d.Log().Select(nil))
	desc, err := g.Descendants("reading-1")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range desc {
		if strings.Contains(n, "analyser") {
			found = true
		}
		if strings.Contains(n, "advertiser") {
			t.Fatal("denied flow appears in provenance")
		}
	}
	if !found {
		t.Fatalf("descendants = %v", desc)
	}
}

// TestFig2ComponentChain is experiment E2: a five-hop chain home → gateway
// → app → DB → analyser with policy persisting end-to-end.
func TestFig2ComponentChain(t *testing.T) {
	clock := newTestClock()
	d := newDomain(t, clock)

	chainCtx := annCtx()
	names := []string{"home", "gateway", "app", "db", "analyser"}
	recs := make([]*recorder, len(names))
	for i, n := range names {
		recs[i] = &recorder{}
		specs := []sbus.EndpointSpec{}
		if i > 0 {
			specs = append(specs, sbus.EndpointSpec{Name: "in", Dir: sbus.Sink, Schema: vitalsSchema()})
		}
		if i < len(names)-1 {
			specs = append(specs, sbus.EndpointSpec{Name: "out", Dir: sbus.Source, Schema: vitalsSchema()})
		}
		if _, err := d.Bus().Register(n, "hospital", chainCtx, recs[i].handler(), specs...); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i+1 < len(names); i++ {
		if err := d.Bus().Connect(PolicyEnginePrincipal, names[i]+".out", names[i+1]+".in"); err != nil {
			t.Fatalf("hop %d: %v", i, err)
		}
	}

	// Propagate a reading down the chain hop by hop (each component's
	// handler would normally re-publish; we drive it manually).
	m := msg.New("vitals").Set("patient", msg.Str("ann")).Set("heart-rate", msg.Float(70))
	m.DataID = "chain-reading"
	for i := 0; i+1 < len(names); i++ {
		comp, _ := d.Bus().Component(names[i])
		if n, err := comp.Publish("out", m); err != nil || n != 1 {
			t.Fatalf("hop %d publish = %d, %v", i, n, err)
		}
	}
	for i := 1; i < len(names); i++ {
		if recs[i].count() != 1 {
			t.Fatalf("component %s received %d messages", names[i], recs[i].count())
		}
	}

	// A public endpoint appended to the chain cannot be connected: policy
	// persists to the end of the chain.
	if _, err := d.Bus().Register("exporter", "hospital", ifc.SecurityContext{}, nil,
		sbus.EndpointSpec{Name: "in", Dir: sbus.Sink, Schema: vitalsSchema()}); err != nil {
		t.Fatal(err)
	}
	if err := d.Bus().Connect(PolicyEnginePrincipal, "analyser.out", "exporter.in"); err == nil {
		t.Fatal("chain leaked to public exporter")
	}
	_ = recs[0]
}

func TestExecutorActionErrors(t *testing.T) {
	clock := newTestClock()
	d := newDomain(t, clock)
	// Actuate on an unregistered device fails and is surfaced as a policy
	// error (audited).
	if err := d.LoadPolicy(`
rule "bad-actuate" { on context go when ctx.go do actuate "ghost" "cmd" 1 }
rule "bad-connect" { on context go when ctx.go do connect "nope.out" -> "nope.in" }
`); err != nil {
		t.Fatal(err)
	}
	d.Store().Set("go", ctxmodel.Bool(true))
	errsRecorded := d.Log().Select(func(r audit.Record) bool {
		return r.Layer == audit.LayerPolicy && strings.Contains(r.Note, "policy error")
	})
	if len(errsRecorded) != 2 {
		t.Fatalf("policy errors audited = %d", len(errsRecorded))
	}
}

func TestQuarantineViaPolicy(t *testing.T) {
	clock := newTestClock()
	d := newDomain(t, clock)
	if _, err := d.Bus().Register("rogue", "hospital", ifc.SecurityContext{}, nil,
		sbus.EndpointSpec{Name: "out", Dir: sbus.Source, Schema: vitalsSchema()}); err != nil {
		t.Fatal(err)
	}
	if err := d.LoadPolicy(`
rule "contain" {
    on event "anomaly"
    do quarantine "rogue"; alert "rogue contained"
}`); err != nil {
		t.Fatal(err)
	}
	d.RegisterPattern(&cep.Threshold{
		PatternName: "anomaly",
		Match:       func(e cep.Event) bool { return e.Type == "anomaly" },
		Count:       1, Window: time.Minute,
	})
	d.FeedEvent(cep.Event{Type: "anomaly", Time: clock.Now(), Value: 1})

	rogue, _ := d.Bus().Component("rogue")
	if !rogue.Quarantined() {
		t.Fatal("rogue not quarantined")
	}
	if len(d.Alerts()) != 1 {
		t.Fatalf("alerts = %v", d.Alerts())
	}
}

func TestFederationRequiresAttestation(t *testing.T) {
	clock := newTestClock()
	net := transport.NewMemNetwork()

	hospital := newDomain(t, clock)
	home, err := NewDomain("home", Options{Clock: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	listener, err := net.Listen("hospital-addr")
	if err != nil {
		t.Fatal(err)
	}
	go hospital.Serve(listener)
	t.Cleanup(func() { listener.Close() })

	// Without enrollment, attestation fails and no link forms.
	if _, err := home.Federate(net, "hospital-addr", hospital.TPM(), attest.Policy{}); !errors.Is(err, ErrAttestation) {
		t.Fatalf("unenrolled federation = %v", err)
	}
	if len(home.Bus().Links()) != 0 {
		t.Fatal("link formed despite failed attestation")
	}

	// After enrollment, federation succeeds.
	home.EnrollPeer(hospital.TPM().DeviceID(), hospital.TPM().EndorsementKey())
	peer, err := home.Federate(net, "hospital-addr", hospital.TPM(), attest.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if peer != "hospital" {
		t.Fatalf("peer = %q", peer)
	}
	// Failed attestation is audited.
	refusals := home.Log().Select(func(r audit.Record) bool {
		return strings.Contains(r.Note, "federation refused")
	})
	if len(refusals) != 1 {
		t.Fatalf("refusal records = %d", len(refusals))
	}
}

func TestCrossDomainEndToEnd(t *testing.T) {
	clock := newTestClock()
	net := transport.NewMemNetwork()

	hospital := newDomain(t, clock)
	home, err := NewDomain("home", Options{Clock: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	listener, err := net.Listen("hospital-addr")
	if err != nil {
		t.Fatal(err)
	}
	go hospital.Serve(listener)
	t.Cleanup(func() { listener.Close() })

	home.EnrollPeer(hospital.TPM().DeviceID(), hospital.TPM().EndorsementKey())
	if _, err := home.Federate(net, "hospital-addr", hospital.TPM(), attest.Policy{}); err != nil {
		t.Fatal(err)
	}

	if _, err := home.Bus().Register("ann-device", "hospital", annCtx(), nil,
		sbus.EndpointSpec{Name: "out", Dir: sbus.Source, Schema: vitalsSchema()}); err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	if _, err := hospital.Bus().Register("ann-analyser", "hospital", annCtx(), rec.handler(),
		sbus.EndpointSpec{Name: "in", Dir: sbus.Sink, Schema: vitalsSchema()}); err != nil {
		t.Fatal(err)
	}
	if err := home.Bus().Connect(PolicyEnginePrincipal, "ann-device.out", "hospital:ann-analyser.in"); err != nil {
		t.Fatal(err)
	}
	dev, _ := home.Bus().Component("ann-device")
	m := msg.New("vitals").Set("patient", msg.Str("ann")).Set("heart-rate", msg.Float(70))
	if _, err := dev.Publish("out", m); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for rec.count() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if rec.count() != 1 {
		t.Fatal("cross-domain delivery missing")
	}
}

func TestPolicyConflictSurfaced(t *testing.T) {
	clock := newTestClock()
	var seen []policy.Conflict
	d, err := NewDomain("dom", Options{
		Clock:      clock.Now,
		OnConflict: func(c policy.Conflict) { seen = append(seen, c) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.LoadPolicy(`
rule "open" priority 5 { on context x when ctx.x do set mode = "open" }
rule "close" priority 1 { on context x when ctx.x do set mode = "closed" }
`); err != nil {
		t.Fatal(err)
	}
	d.Store().Set("x", ctxmodel.Bool(true))
	if len(seen) != 1 || len(d.Conflicts()) != 1 {
		t.Fatalf("conflicts = %v / %v", seen, d.Conflicts())
	}
	if v, _ := d.Store().Get("mode"); v.Str != "open" {
		t.Fatalf("mode = %v (priority must win)", v)
	}
}

func TestLoadPolicyParseError(t *testing.T) {
	d := newDomain(t, newTestClock())
	if err := d.LoadPolicy("not a policy"); err == nil {
		t.Fatal("garbage policy accepted")
	}
}

func TestDomainAccessors(t *testing.T) {
	d := newDomain(t, newTestClock())
	if d.Name() != "hospital" {
		t.Fatalf("Name = %q", d.Name())
	}
	if d.Bus() == nil || d.Store() == nil || d.Log() == nil ||
		d.PolicyEngine() == nil || d.Devices() == nil || d.TPM() == nil {
		t.Fatal("nil accessor")
	}
}

func TestDomainTimerRuleViaTick(t *testing.T) {
	clock := newTestClock()
	d := newDomain(t, clock)
	if err := d.LoadPolicy(`rule "hb" { on timer 5m do alert "tick" }`); err != nil {
		t.Fatal(err)
	}
	d.Tick()
	if len(d.Alerts()) != 1 {
		t.Fatalf("alerts = %v", d.Alerts())
	}
	clock.Advance(time.Minute)
	d.Tick() // period not elapsed
	if len(d.Alerts()) != 1 {
		t.Fatal("timer re-fired early")
	}
	clock.Advance(5 * time.Minute)
	d.Tick()
	if len(d.Alerts()) != 2 {
		t.Fatal("timer did not re-fire")
	}
}

func TestDomainAbsencePatternViaTick(t *testing.T) {
	clock := newTestClock()
	d := newDomain(t, clock)
	d.RegisterPattern(&cep.Absence{
		PatternName: "silence",
		Timeout:     time.Minute,
	})
	if err := d.LoadPolicy(`rule "s" { on event "silence" do alert "gone quiet" }`); err != nil {
		t.Fatal(err)
	}
	d.FeedEvent(cep.Event{Type: "ping", Time: clock.Now()})
	clock.Advance(2 * time.Minute)
	d.Tick()
	if len(d.Alerts()) != 1 {
		t.Fatalf("alerts = %v", d.Alerts())
	}
}

// TestAdmissionPolicyValidatesForeignTags exercises Challenge 1: a
// federated peer presenting a context whose tags do not resolve in the
// global namespace is refused at ingress; once the tag authority registers
// the tag, the same connect succeeds.
func TestAdmissionPolicyValidatesForeignTags(t *testing.T) {
	clock := newTestClock()
	net := transport.NewMemNetwork()

	// The global namespace knows "medical" tags under hospital.example.
	root := names.NewRoot()
	zone, err := root.DelegatePath("hospital.example")
	if err != nil {
		t.Fatal(err)
	}
	for _, tag := range []ifc.Tag{"hospital.example/medical", "hospital.example/ann"} {
		if err := zone.Register(names.TagRecord{Tag: tag, Owner: "hospital", TTL: time.Hour}); err != nil {
			t.Fatal(err)
		}
	}
	resolver := names.NewResolver(root)

	hospital, err := NewDomain("hospital", Options{Clock: clock.Now, Resolver: resolver})
	if err != nil {
		t.Fatal(err)
	}
	home, err := NewDomain("home", Options{Clock: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	listener, err := net.Listen("hospital-addr")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { listener.Close() })
	go hospital.Serve(listener)
	home.EnrollPeer(hospital.TPM().DeviceID(), hospital.TPM().EndorsementKey())
	if _, err := home.Federate(net, "hospital-addr", hospital.TPM(), attest.Policy{}); err != nil {
		t.Fatal(err)
	}

	knownCtx := ifc.MustContext(
		[]ifc.Tag{"hospital.example/medical", "hospital.example/ann"}, nil)
	unknownCtx := ifc.MustContext(
		[]ifc.Tag{"hospital.example/medical", "startup.example/wearable"}, nil)
	sinkCtx := ifc.MustContext(
		[]ifc.Tag{"hospital.example/medical", "hospital.example/ann", "startup.example/wearable"}, nil)

	if _, err := home.Bus().Register("known-dev", "hospital", knownCtx, nil,
		sbus.EndpointSpec{Name: "out", Dir: sbus.Source, Schema: vitalsSchema()}); err != nil {
		t.Fatal(err)
	}
	if _, err := home.Bus().Register("unknown-dev", "startup", unknownCtx, nil,
		sbus.EndpointSpec{Name: "out", Dir: sbus.Source, Schema: vitalsSchema()}); err != nil {
		t.Fatal(err)
	}
	if _, err := hospital.Bus().Register("analyser", "hospital", sinkCtx, nil,
		sbus.EndpointSpec{Name: "in", Dir: sbus.Sink, Schema: vitalsSchema()}); err != nil {
		t.Fatal(err)
	}

	// Known tags: admitted (the flow itself is legal).
	if err := home.Bus().Connect(PolicyEnginePrincipal, "known-dev.out", "hospital:analyser.in"); err != nil {
		t.Fatalf("known-tag connect: %v", err)
	}
	// Unknown tag: refused by the admission policy despite a legal flow.
	err = home.Bus().Connect(PolicyEnginePrincipal, "unknown-dev.out", "hospital:analyser.in")
	if err == nil || !strings.Contains(err.Error(), "names") {
		t.Fatalf("unknown-tag connect = %v, want namespace refusal", err)
	}
	refusals := hospital.Log().Select(func(r audit.Record) bool {
		return strings.Contains(r.Note, "admission policy")
	})
	if len(refusals) != 1 {
		t.Fatalf("admission refusals audited = %d", len(refusals))
	}

	// The startup registers its tag with the global namespace; the same
	// connect now succeeds ("interactions may occur with entities never
	// before encountered" — once their tags are resolvable).
	startupZone, err := root.DelegatePath("startup.example")
	if err != nil {
		t.Fatal(err)
	}
	if err := startupZone.Register(names.TagRecord{
		Tag: "startup.example/wearable", Owner: "startup", TTL: time.Hour,
	}); err != nil {
		t.Fatal(err)
	}
	if err := home.Bus().Connect(PolicyEnginePrincipal, "unknown-dev.out", "hospital:analyser.in"); err != nil {
		t.Fatalf("post-registration connect: %v", err)
	}
}

func TestOnAlertCallback(t *testing.T) {
	clock := newTestClock()
	var got []string
	d, err := NewDomain("dom", Options{
		Clock:   clock.Now,
		OnAlert: func(m string) { got = append(got, m) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.LoadPolicy(`rule "r" { on context x when ctx.x do alert "hi" }`); err != nil {
		t.Fatal(err)
	}
	d.Store().Set("x", ctxmodel.Bool(true))
	if len(got) != 1 || got[0] != "hi" {
		t.Fatalf("alerts = %v", got)
	}
}

// TestLinkPeerAndStatus covers the unattested daemon-style federation
// path: LinkPeer retries until the peer's listener appears, and LinkStatus
// reflects the live link.
func TestLinkPeerAndStatus(t *testing.T) {
	net := transport.NewMemNetwork()
	a, err := NewDomain("alpha", Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewDomain("beta", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st := b.LinkStatus(); len(st) != 0 {
		t.Fatalf("links before federation = %v", st)
	}

	// Start the dial *before* the listener exists: LinkPeer must retry.
	done := make(chan error, 1)
	go func() {
		peer, err := b.LinkPeer(net, "alpha-addr", 10*time.Second)
		if err == nil && peer != "alpha" {
			err = errors.New("unexpected peer name " + peer)
		}
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	listener, err := net.Listen("alpha-addr")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { listener.Close() })
	go a.Serve(listener)

	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("LinkPeer did not complete")
	}
	st := b.LinkStatus()
	if len(st) != 1 || st[0].Peer != "alpha" || st[0].State != sbus.LinkUp || !st[0].Dialer {
		t.Fatalf("LinkStatus = %+v", st)
	}
	// LinkPeer to a missing address with no wait budget fails cleanly.
	if _, err := b.LinkPeer(net, "nowhere", 0); err == nil {
		t.Fatal("LinkPeer to missing address succeeded")
	}
}
