package core

import (
	"syscall"
	"testing"

	"lciot/internal/fault"
)

// TestHealthLadder walks the audit-store subsystem down the ladder:
// ok while persisting, degraded once a WAL failure flips the store to
// in-memory buffering, failed once the buffer bound forces shedding.
func TestHealthLadder(t *testing.T) {
	defer fault.DisarmAll()
	clock := newTestClock()
	d, src := obligationDomain(t, t.TempDir(), clock)

	stateOf := func(name string) (SubsystemHealth, bool) {
		for _, h := range d.Health() {
			if h.Subsystem == name {
				return h, true
			}
		}
		return SubsystemHealth{}, false
	}

	if h, ok := stateOf("audit-store"); !ok || h.State != HealthOK {
		t.Fatalf("fresh domain audit-store health = %+v", h)
	}

	fault.Arm("store.wal.write", fault.Always(fault.Action{Err: fault.Wrap(syscall.ENOSPC)}))
	publishTelemetry(t, src, "pump-9", 5)
	d.Log().Flush()
	_ = d.AuditStore().Sync() // surfaces (and latches) the degraded state
	publishTelemetry(t, src, "pump-9", 5)
	d.Log().Flush()
	if h, _ := stateOf("audit-store"); h.State != HealthDegraded {
		t.Fatalf("after WAL failure audit-store health = %+v, want degraded", h)
	}

	// The other subsystems stay on their own rungs.
	if h, _ := stateOf("links"); h.State != HealthOK {
		t.Fatalf("links health = %+v, want ok", h)
	}
	if h, _ := stateOf("bus"); h.State != HealthOK {
		t.Fatalf("bus health = %+v, want ok", h)
	}
	_ = d.Close()
}
