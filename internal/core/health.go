package core

import (
	"fmt"
	"strings"

	"lciot/internal/sbus"
	"lciot/internal/telemetry"
)

// This file is the graceful-degradation ladder's reporting surface: a
// per-subsystem ok / degraded / failed state model aggregated from the
// layers' own counters. The ladder's rungs are behavioural, not just
// labels — a degraded audit store buffers in memory instead of wedging
// group commit (see store.ErrDegraded); a degraded link queues egress
// behind a reconnecting session; an overloaded bus falls back to inline
// delivery. Health makes those states visible so operators (lciotd logs
// transitions) and soak harnesses can react before degraded becomes
// failed.

// HealthState is one rung of the degradation ladder.
type HealthState int

const (
	// HealthOK: the subsystem is operating normally.
	HealthOK HealthState = iota
	// HealthDegraded: the subsystem is up but operating in a reduced mode
	// (buffering, reconnecting, shedding load to fallbacks); no data has
	// been lost yet, but the margin is gone.
	HealthDegraded
	// HealthFailed: the subsystem has lost data or given up (shed audit
	// records, a link whose retry budget ran out); operator action or a
	// restart is required.
	HealthFailed
)

// String renders the state for logs and status lines.
func (s HealthState) String() string {
	switch s {
	case HealthOK:
		return "ok"
	case HealthDegraded:
		return "degraded"
	case HealthFailed:
		return "failed"
	}
	return fmt.Sprintf("HealthState(%d)", int(s))
}

// SubsystemHealth is one subsystem's position on the ladder.
type SubsystemHealth struct {
	// Subsystem names the subsystem: "audit-store", "links", "bus",
	// "obligations".
	Subsystem string
	// State is the ladder rung.
	State HealthState
	// Detail is a one-line operator-facing explanation.
	Detail string
}

// Health reports every subsystem's current state, sorted stably by
// subsystem name order below. The worst rung across subsystems is the
// domain's effective state.
//
// The report is cached behind a fingerprint of the counters it is built
// from: polls while nothing changed return a copy of the last report (one
// bounded allocation, no formatting), so a status loop or scrape endpoint
// can call this every few seconds without rebuilding strings each time.
// Safe concurrent with Close — the probes read atomics and their own
// locks, never the stores Close tears down.
func (d *Domain) Health() []SubsystemHealth {
	// Skew rides the health poll cadence: at most one evaluation per
	// debounce window, outside healthMu (see diag.go).
	d.checkSkewDiag()
	fp := d.healthFingerprint()
	d.healthMu.Lock()
	defer d.healthMu.Unlock()
	if d.healthInit && fp == d.healthFP {
		out := make([]SubsystemHealth, len(d.healthLast))
		copy(out, d.healthLast[:])
		return out
	}
	report := [4]SubsystemHealth{
		d.auditStoreHealth(),
		d.linkHealth(),
		d.busHealth(),
		d.obligationHealth(),
	}
	worst := HealthOK
	for _, h := range report {
		if h.State > worst {
			worst = h.State
		}
	}
	// Degradation transitions always leave a trace (error spans bypass
	// sampling), so a /traces read after an incident shows when the rung
	// moved even if no sampled flow was in flight — and they trigger a
	// diagnostic capture (see diag.go), so the profile evidence from the
	// moment things worsened survives for post-hoc diagnosis.
	if d.healthInit && worst > d.healthWorst {
		for _, h := range report {
			if h.State > HealthOK {
				telemetry.RecordSpan(telemetry.TraceContext{}, d.name, "health-"+h.State.String(),
					h.Subsystem, "", h.Detail)
			}
		}
		d.maybeCaptureDiag(worst.String())
	}
	d.healthFP, d.healthLast, d.healthWorst, d.healthInit = fp, report, worst, true
	out := make([]SubsystemHealth, len(report))
	copy(out, report[:])
	return out
}

// healthFingerprint folds every input the subsystem probes read into one
// value, without allocating: equal fingerprints mean the cached report is
// still accurate.
func (d *Domain) healthFingerprint() uint64 {
	const prime = 1099511628211
	var h uint64 = 14695981039346656037
	mix := func(v uint64) { h = (h ^ v) * prime }
	if d.auditStore != nil {
		sh := d.auditStore.Health()
		mix(sh.Shed)
		mix(uint64(sh.Buffered))
		if sh.Degraded {
			mix(1)
		}
	}
	mix(d.bus.LinkHealthFingerprint())
	delivered, overflow := d.bus.HealthTotals()
	mix(delivered)
	mix(overflow)
	mix(uint64(d.oblSched.Len()))
	if d.closed.Load() {
		mix(1)
	}
	return h
}

// auditStoreHealth maps the durable store's degradation state onto the
// ladder: degraded while buffering (evidence at risk), failed once
// records have been shed (evidence lost).
func (d *Domain) auditStoreHealth() SubsystemHealth {
	h := SubsystemHealth{Subsystem: "audit-store", State: HealthOK}
	if d.auditStore == nil {
		h.Detail = "in-memory only (no data dir)"
		return h
	}
	sh := d.auditStore.Health()
	switch {
	case sh.Shed > 0:
		h.State = HealthFailed
		h.Detail = fmt.Sprintf("persistence failed (%v); %d records buffered, %d SHED",
			sh.Cause, sh.Buffered, sh.Shed)
	case sh.Degraded:
		h.State = HealthDegraded
		h.Detail = fmt.Sprintf("persistence failed (%v); buffering in memory (%d records)",
			sh.Cause, sh.Buffered)
	default:
		h.Detail = "persisting"
	}
	return h
}

// linkHealth reports cross-bus link state: degraded while any link is
// mid-reconnect (egress queues behind the outage). Links whose retry
// budget ran out are removed from routing by the supervisor, so they
// surface through lost federation rather than a lingering entry here.
func (d *Domain) linkHealth() SubsystemHealth {
	h := SubsystemHealth{Subsystem: "links", State: HealthOK}
	st := d.bus.LinkStatus()
	if len(st) == 0 {
		h.Detail = "no links"
		return h
	}
	var reconnecting []string
	up := 0
	for _, s := range st {
		switch s.State {
		case sbus.LinkUp:
			up++
		case sbus.LinkReconnecting:
			reconnecting = append(reconnecting, s.Peer)
		}
	}
	if len(reconnecting) > 0 {
		h.State = HealthDegraded
		h.Detail = fmt.Sprintf("%d/%d up; reconnecting: %s",
			up, len(st), strings.Join(reconnecting, ", "))
		return h
	}
	h.Detail = fmt.Sprintf("%d/%d up", up, len(st))
	return h
}

// busHealth watches the shard handoff rings: overflow means deliveries
// are falling back to inline execution on publisher goroutines — the bus
// is still delivering everything, but with the relaxed ordering overload
// brings (degraded, by design).
func (d *Domain) busHealth() SubsystemHealth {
	h := SubsystemHealth{Subsystem: "bus", State: HealthOK}
	var overflow, delivered uint64
	for _, s := range d.bus.ShardStats() {
		overflow += s.Overflow
		delivered += s.Delivered
	}
	if overflow > 0 {
		h.State = HealthDegraded
		h.Detail = fmt.Sprintf("%d handoff overflows (inline fallback); %d delivered", overflow, delivered)
		return h
	}
	h.Detail = fmt.Sprintf("%d delivered across %d shards", delivered, d.bus.NumShards())
	return h
}

// obligationHealth reports the retention-deadline backlog. A large
// backlog is normal between sweeps; the subsystem only degrades once the
// domain is closed with deadlines still pending (they will not execute).
func (d *Domain) obligationHealth() SubsystemHealth {
	h := SubsystemHealth{Subsystem: "obligations", State: HealthOK}
	backlog := d.oblSched.Len()
	if d.closed.Load() && backlog > 0 {
		h.State = HealthDegraded
		h.Detail = fmt.Sprintf("closed with %d deadlines pending (resume via LoadPolicy after restart)", backlog)
		return h
	}
	h.Detail = fmt.Sprintf("%d deadlines scheduled", backlog)
	return h
}
