package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"lciot/internal/audit"
	"lciot/internal/cep"
	"lciot/internal/fault"
	"lciot/internal/gateway"
	"lciot/internal/ifc"
	"lciot/internal/obligation"
	"lciot/internal/telemetry"
)

// fpSweep is the chaos seam in the obligation sweep: a delay stalls the
// sweep mid-Tick; an error (or Drop) skips the pass entirely — deadlines
// stay scheduled and must be executed by a later sweep, which is the
// at-least-once property soak drills assert.
var fpSweep = fault.New("core.obligation.sweep")

// This file is the domain-side obligation engine: the glue that turns the
// compiled obligation table (internal/obligation) into enforcement and
// evidence.
//
//   - Scheduling: an audit-log sink watches every allowed flow; a datum
//     whose secrecy label carries a retention-limited tag lands in the
//     sharded deadline scheduler, and the registration is audited as
//     ObligationScheduled (from the sweep loop, never from the sink — a
//     sink must not call back into its own log).
//   - Sweeping: Tick (or SweepObligations directly) pops expired
//     deadlines in batches and executes erasure — one live-state purge
//     and one redaction pass per batch, so a 10k-deadline backlog costs
//     a handful of store scans, not 10k.
//   - Erasure: the datum and every data descendant in the audit graph are
//     purged from live state (context store, CEP windows, gateway
//     buffers/journals) and tombstoned in both audit tiers —
//     chain-preserving, so auditview still verifies end to end.
//   - Resumption: the scheduler is memory-only; after a restart,
//     rebuildObligations rescans the durable store and reschedules every
//     live (non-redacted) datum, so sweeps resume from the WAL with no
//     second durability mechanism.

// obligationSweepBatch bounds the deadlines executed per sweep pass so a
// Tick never stalls behind an unbounded backlog.
const obligationSweepBatch = 4096

// ObligationTable returns the domain's compiled obligation table (nil
// until a policy with obligation clauses is loaded).
func (d *Domain) ObligationTable() *obligation.Table { return d.oblTab.Load() }

// ApplyObligations attaches the compiled residency/purpose facets of every
// obligated secrecy tag to the context — the hook callers use when
// labelling data sources, so the hot-path flow rule enforces residency and
// purpose limitation from then on.
func (d *Domain) ApplyObligations(ctx ifc.SecurityContext) ifc.SecurityContext {
	return d.oblTab.Load().Apply(ctx)
}

// Provenance exposes the domain's incrementally maintained audit graph
// (fed by a log sink; erasure and subject-access queries read it).
func (d *Domain) Provenance() *audit.Graph { return d.prov }

// ObligationBacklog returns the number of retention deadlines currently
// tracked by the scheduler.
func (d *Domain) ObligationBacklog() int { return d.oblSched.Len() }

// AttachGateway registers a gateway for erasure propagation: erasure
// purges the erased subject's buffered readings and journal entries on
// every attached gateway.
func (d *Domain) AttachGateway(g *gateway.Gateway) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.oblGateways = append(d.oblGateways, g)
}

// obligationSink is the audit-log sink half of scheduling: it feeds the
// provenance graph and registers a retention deadline for every allowed
// flow of a retention-limited datum. It runs on the log's hasher
// goroutine, so it only touches the scheduler and the announcement queue;
// audit records for the schedule actions are appended by the sweep loop.
func (d *Domain) obligationSink(r audit.Record) {
	d.prov.Append([]audit.Record{r})
	tab := d.oblTab.Load()
	if tab == nil || r.Kind != audit.FlowAllowed || r.DataID == "" || r.Redacted {
		return
	}
	retain, tag, ok := tab.Retention(r.SrcCtx.Secrecy)
	if !ok {
		return
	}
	e := obligation.Entry{Tag: tag, DataID: r.DataID, Seq: r.Seq, Due: r.Time.Add(retain)}
	if d.oblSched.Schedule(e) {
		d.mu.Lock()
		d.oblPending = append(d.oblPending, e)
		d.mu.Unlock()
	}
}

// installObligations swaps in a compiled table (possibly empty — loading
// a policy without obligation clauses retires every standing duty),
// audits the load, retires deadlines whose tag lost its retention limit,
// and rebuilds the scheduler from the durable store (LoadPolicy calls
// it).
func (d *Domain) installObligations(tab *obligation.Table) error {
	d.oblTab.Store(tab)
	stale := func(e obligation.Entry) bool {
		s, ok := tab.Lookup(e.Tag)
		return !ok || s.Retain <= 0
	}
	dropped := d.oblSched.PurgeIf(stale)
	d.mu.Lock()
	keptPending := d.oblPending[:0]
	for _, e := range d.oblPending {
		if !stale(e) {
			keptPending = append(keptPending, e)
		}
	}
	d.oblPending = keptPending
	d.mu.Unlock()
	if tab.Len() > 0 || dropped > 0 {
		d.log.Append(audit.Record{
			Kind: audit.Reconfiguration, Layer: audit.LayerPolicy, Domain: d.name,
			Agent: PolicyEnginePrincipal,
			Note: fmt.Sprintf("obligations loaded: %d tags under management, %d retired deadlines dropped",
				tab.Len(), dropped),
		})
	}
	return d.rebuildObligations(tab)
}

// rebuildObligations rescans the durable store and reschedules retention
// deadlines for every live (non-redacted) datum under a retention-limited
// tag. Already-expired deadlines land in the past and are popped by the
// next sweep — exactly where a crash mid-sweep left off.
func (d *Domain) rebuildObligations(tab *obligation.Table) error {
	if d.auditStore == nil || tab == nil || !tab.HasRetention() {
		return nil
	}
	rebuilt := 0
	err := d.auditStore.Read(d.auditStore.FirstSeq(), 0, func(r audit.Record) error {
		if r.Kind != audit.FlowAllowed || r.DataID == "" || r.Redacted {
			return nil
		}
		retain, tag, ok := tab.Retention(r.SrcCtx.Secrecy)
		if !ok {
			return nil
		}
		if d.oblSched.Schedule(obligation.Entry{
			Tag: tag, DataID: r.DataID, Seq: r.Seq, Due: r.Time.Add(retain),
		}) {
			rebuilt++
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("core: obligation rebuild: %w", err)
	}
	if rebuilt > 0 {
		d.log.Append(audit.Record{
			Kind: audit.ObligationScheduled, Layer: audit.LayerPolicy, Domain: d.name,
			Agent: PolicyEnginePrincipal,
			Note:  fmt.Sprintf("obligation sweep resumed from store: %d retention deadlines rescheduled", rebuilt),
		})
	}
	return nil
}

// Sweep telemetry: pass duration and deadlines executed. The backlog
// gauge lives with the domain wiring since it is per-domain state.
var (
	sweepHist   = telemetry.NewHistogram("core_obligation_sweep_ns")
	oblExecuted = telemetry.NewCounter("core_obligations_executed_total")
)

// SweepObligations drains scheduling announcements into the audit log and
// executes every retention deadline due at the domain clock, in batches.
// It returns the number of deadlines executed. Tick calls it; daemons may
// also call it directly on their own cadence. Sweeping a closed domain is
// a no-op: sweepMu pairs with the barrier in Close, so a sweep never
// touches a store that is shutting down underneath it.
func (d *Domain) SweepObligations() int {
	start := sweepHist.Start()
	d.sweepMu.Lock()
	defer d.sweepMu.Unlock()
	if d.closed.Load() {
		return 0
	}
	if act := fpSweep.Check(); act != nil {
		act.Wait()
		if act.Err != nil || act.Drop {
			// Skipped pass: deadlines stay scheduled for the next sweep.
			return 0
		}
	}
	d.mu.Lock()
	pending := d.oblPending
	d.oblPending = nil
	d.mu.Unlock()
	for _, e := range pending {
		d.log.AppendAsync(audit.Record{
			Kind: audit.ObligationScheduled, Layer: audit.LayerPolicy, Domain: d.name,
			DataID: e.DataID, Agent: PolicyEnginePrincipal,
			Note: fmt.Sprintf("retention deadline %s (tag %s)", e.Due.UTC().Format(time.RFC3339), e.Tag),
		})
	}

	now := d.clock()
	executed := 0
	defer func() {
		oblExecuted.Add(uint64(executed))
		sweepHist.ObserveSince(start)
	}()
	for {
		batch := d.oblSched.Due(now, obligationSweepBatch)
		if len(batch) == 0 {
			return executed
		}
		items := make([]eraseItem, len(batch))
		for i, e := range batch {
			items[i] = eraseItem{tag: e.Tag, dataID: e.DataID}
		}
		// Retention expiry is per-datum: the expired readings (and their
		// derivations) go, but the subject's *current* state — context
		// attributes, CEP windows, gateway buffers fed by still-retained
		// data — stays. Only an erasure request wipes the subject.
		d.eraseMany(items, "retention expired", false)
		executed += len(batch)
		if len(batch) < obligationSweepBatch {
			return executed
		}
	}
}

// An eraseItem is one datum to erase under one obligated tag.
type eraseItem struct {
	tag    ifc.Tag
	dataID string
}

// subjectOf maps a provenance DataID to its subject prefix: readings carry
// IDs of the form "device/metric/seq", and live state (context attributes,
// CEP events, gateway buffers) is keyed by the device/subject.
func subjectOf(dataID string) string {
	if i := strings.IndexByte(dataID, '/'); i > 0 {
		return dataID[:i]
	}
	return dataID
}

// EraseData erases one datum under an obligation (an explicit erasure
// request): live-state purge for its subject, deadline cancellation, and
// provenance-guided chain-preserving redaction of the datum and every
// data item derived from it, in both audit tiers.
func (d *Domain) EraseData(tag ifc.Tag, dataID, reason string) {
	d.eraseMany([]eraseItem{{tag: tag, dataID: dataID}}, reason, true)
}

// eraseMany is the batched erasure engine behind EraseData, EraseTag and
// the retention sweep: targets are expanded through provenance once, live
// state is purged once, and both audit tiers are redacted in one pass.
// purgeSubjects distinguishes the two legal grounds: an erasure request
// (right to be forgotten) wipes everything keyed under the data subjects,
// while retention expiry purges only the expired data items themselves —
// the subject's state derived from still-retained data is untouched.
// Every obligation action leaves evidence: ObligationExecuted per datum,
// one Redaction record for the tombstone pass, ObligationRefused when a
// tier could not be redacted. eraseMany is safe from any caller —
// including the CEP detection handler (erase-on-event), because the
// sharded CEP engine runs handlers outside its lane locks and Purge
// locks lane-at-a-time.
func (d *Domain) eraseMany(items []eraseItem, reason string, purgeSubjects bool) {
	if len(items) == 0 {
		return
	}
	// A datum is scheduled under its *tightest*-retention tag, which may
	// not be the tag it is being erased under — cancel across every
	// retention-limited tag so no stale deadline survives to fire (and
	// fabricate ObligationExecuted evidence) later.
	var retentionTags []ifc.Tag
	if tab := d.oblTab.Load(); tab != nil {
		for _, tag := range tab.Tags() {
			if s, ok := tab.Lookup(tag); ok && s.Retain > 0 {
				retentionTags = append(retentionTags, tag)
			}
		}
	}
	// Expand each datum through the provenance graph (memoized) and build
	// the union of redaction targets and live-state subjects.
	targets := make(map[string]bool, len(items))
	subjects := make(map[string]bool)
	derived := make([]int, len(items))
	for i, it := range items {
		n := 0
		add := func(id string) {
			targets[id] = true
			subjects[subjectOf(id)] = true
			d.oblSched.Cancel(it.tag, id)
			for _, tag := range retentionTags {
				if tag != it.tag {
					d.oblSched.Cancel(tag, id)
				}
			}
			n++
		}
		add(it.dataID)
		if desc, err := d.prov.Descendants(it.dataID); err == nil {
			for _, id := range desc {
				if node, ok := d.prov.Node(id); ok && node.Kind == audit.NodeData {
					add(id)
				}
			}
		}
		derived[i] = n
	}

	// Live state. An erasure request purges everything keyed under the
	// subjects (context attributes, CEP window events, gateway buffers and
	// journals); retention expiry only touches state keyed by the expired
	// data items themselves.
	ctxPurged := d.store.DeleteMatching(func(key string) bool {
		if targets[key] {
			return true
		}
		if !purgeSubjects {
			return false
		}
		if subjects[key] {
			return true
		}
		for s := range subjects {
			if strings.HasPrefix(key, s+"/") {
				return true
			}
		}
		return false
	})
	cepPred := func(e cep.Event) bool {
		return targets[e.Source] || (purgeSubjects && subjects[e.Source])
	}
	cepPurged := d.cep.Purge(cepPred)
	d.mu.Lock()
	gws := append([]*gateway.Gateway(nil), d.oblGateways...)
	// Drop queued schedule announcements for the erased data: draining
	// them later would append fresh records naming the erased identifiers.
	keptPending := d.oblPending[:0]
	for _, e := range d.oblPending {
		if !targets[e.DataID] {
			keptPending = append(keptPending, e)
		}
	}
	d.oblPending = keptPending
	d.mu.Unlock()
	gwPurged := 0
	if purgeSubjects {
		for _, g := range gws {
			for s := range subjects {
				n, err := g.EraseDevice(s)
				if err != nil {
					d.log.Append(audit.Record{
						Kind: audit.ObligationRefused, Layer: audit.LayerPolicy, Domain: d.name,
						Agent: PolicyEnginePrincipal,
						Note:  "gateway erasure failed: " + err.Error(),
					})
					continue
				}
				gwPurged += n
			}
		}
	}

	// Provenance-guided redaction across both audit tiers, one pass.
	redacted, refused := d.redactTargets(targets, reason)
	// The erased data must not remain queryable from the live provenance
	// graph either: its nodes (and every touching edge) go with it. The
	// Descendants expansion above already happened, so ordering is safe.
	d.prov.RemoveNodes(targets)

	// Evidence records deliberately carry no DataID: naming the erased
	// datum in a fresh live record would re-introduce the identifier the
	// tombstones just removed.
	for i, it := range items {
		d.log.AppendAsync(audit.Record{
			Kind: audit.ObligationExecuted, Layer: audit.LayerPolicy, Domain: d.name,
			Agent: PolicyEnginePrincipal,
			Note:  fmt.Sprintf("erased (%s, tag %s): %d data items including derivations", reason, it.tag, derived[i]),
		})
	}
	d.log.Append(audit.Record{
		Kind: audit.Redaction, Layer: audit.LayerPolicy, Domain: d.name,
		Agent: PolicyEnginePrincipal,
		Note: fmt.Sprintf("tombstoned %d records for %d erased data items (%s); live state purged (ctx %d, cep %d, gateway %d)",
			redacted, len(targets), reason, ctxPurged, cepPurged, gwPurged),
	})
	if refused > 0 {
		d.log.Append(audit.Record{
			Kind: audit.ObligationRefused, Layer: audit.LayerPolicy, Domain: d.name,
			Agent: PolicyEnginePrincipal,
			Note:  fmt.Sprintf("%d records could not be tombstoned (%s)", refused, reason),
		})
	}
}

// redactTargets tombstones every record whose DataID is in targets, in the
// in-memory log and the durable store, returning the number of distinct
// sequence numbers tombstoned and the number of failures. Store targets
// are pinned before redaction so MaxSegments retention cannot race the
// rewrite. The two tiers share sequence numbering, so the same seq
// tombstoned in both counts once.
func (d *Domain) redactTargets(targets map[string]bool, reason string) (redacted, refused int) {
	note := "redacted: " + reason
	distinct := make(map[uint64]bool)
	var memSeqs []uint64
	for _, r := range d.log.Select(func(r audit.Record) bool {
		return !r.Redacted && r.DataID != "" && targets[r.DataID]
	}) {
		memSeqs = append(memSeqs, r.Seq)
	}
	d.log.RedactMany(memSeqs, note)
	for _, seq := range memSeqs {
		distinct[seq] = true
	}
	if d.auditStore != nil {
		var storeSeqs []uint64
		var pins []func()
		err := d.auditStore.Read(d.auditStore.FirstSeq(), 0, func(r audit.Record) error {
			if !r.Redacted && r.DataID != "" && targets[r.DataID] {
				storeSeqs = append(storeSeqs, r.Seq)
				pins = append(pins, d.auditStore.Pin(r.Seq))
			}
			return nil
		})
		if err != nil {
			refused++
		}
		// One batched pass: each affected segment is rewritten once for
		// the whole erasure, however many records it tombstones.
		if n, err := d.auditStore.RedactMany(storeSeqs, note); err != nil {
			refused += len(storeSeqs) - n
		} else {
			for _, seq := range storeSeqs {
				distinct[seq] = true
			}
		}
		for _, release := range pins {
			release()
		}
	}
	return len(distinct), refused
}

// EraseTag executes a right-to-erasure request for everything under a tag:
// every live datum whose flow was recorded under the tag (in either audit
// tier) is erased, with provenance-guided propagation per datum. reason
// lands in the evidence trail. Returns the number of data items erased.
func (d *Domain) EraseTag(tag ifc.Tag, reason string) int {
	return d.eraseTag(tag, reason)
}

// eraseTag implements EraseTag.
func (d *Domain) eraseTag(tag ifc.Tag, reason string) int {
	ids := map[string]bool{}
	collect := func(r audit.Record) {
		if r.Kind == audit.FlowAllowed && !r.Redacted && r.DataID != "" &&
			(r.SrcCtx.Secrecy.Has(tag) || r.DstCtx.Secrecy.Has(tag)) {
			ids[r.DataID] = true
		}
	}
	for _, r := range d.log.Select(nil) {
		collect(r)
	}
	if d.auditStore != nil {
		_ = d.auditStore.Read(d.auditStore.FirstSeq(), 0, func(r audit.Record) error {
			collect(r)
			return nil
		})
	}
	sorted := make([]string, 0, len(ids))
	for id := range ids {
		sorted = append(sorted, id)
	}
	sort.Strings(sorted)
	items := make([]eraseItem, len(sorted))
	for i, id := range sorted {
		items[i] = eraseItem{tag: tag, dataID: id}
	}
	d.eraseMany(items, reason, true)
	d.log.Append(audit.Record{
		Kind: audit.ObligationExecuted, Layer: audit.LayerPolicy, Domain: d.name,
		Agent: PolicyEnginePrincipal,
		Note:  fmt.Sprintf("tag %s erased (%s): %d data items", tag, reason, len(sorted)),
	})
	return len(sorted)
}

// handleEraseTriggers fires the erase-on clauses matching a detection
// pattern. It is called from the CEP detection handler (outside the
// engine's lane locks) before policy evaluation.
func (d *Domain) handleEraseTriggers(pattern string) {
	tab := d.oblTab.Load()
	if tab == nil {
		return
	}
	for _, tag := range tab.EraseTriggers(pattern) {
		d.eraseTag(tag, "erase on "+pattern)
	}
}
