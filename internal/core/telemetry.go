package core

import "lciot/internal/telemetry"

// Metrics returns the telemetry registry the domain's instruments report
// into. All domains in a process share the default registry (series are
// disambiguated by their bus/domain labels), so the returned registry is
// what lciotd's /metrics endpoint serves.
func (d *Domain) Metrics() *telemetry.Registry {
	return telemetry.Default()
}

// registerDomainMetrics wires the domain-level series: all func-backed,
// reading state the subsystems maintain anyway.
func registerDomainMetrics(d *Domain) {
	reg := telemetry.Default()
	reg.GaugeFunc("core_obligation_backlog",
		func() float64 { return float64(d.oblSched.Len()) },
		"domain", d.name)
	reg.GaugeFunc("audit_ingest_depth",
		func() float64 { return float64(d.log.IngestDepth()) },
		"domain", d.name)
	// The worst rung of the degradation ladder as a number an alert can
	// threshold on: 0 ok, 1 degraded, 2 failed. Reading it goes through
	// the fingerprint cache, so a scrape does not rebuild the report.
	reg.GaugeFunc("core_health_rung", func() float64 {
		d.Health()
		d.healthMu.Lock()
		defer d.healthMu.Unlock()
		return float64(d.healthWorst)
	}, "domain", d.name)
	reg.GaugeFunc("telemetry_spans_evicted", func() float64 {
		return float64(telemetry.SpansEvicted())
	}, "domain", d.name)
	// Lane-load skew (see skew.go): the imbalance gauge is what alerts
	// threshold on; max/mean give the magnitude behind it.
	reg.GaugeFunc("core_lane_imbalance", func() float64 {
		return d.SkewReport().Imbalance
	}, "domain", d.name)
	reg.GaugeFunc("core_lane_max_load", func() float64 {
		return float64(d.SkewReport().MaxLoad)
	}, "domain", d.name)
	reg.GaugeFunc("core_lane_mean_load", func() float64 {
		return d.SkewReport().MeanLoad
	}, "domain", d.name)
}
