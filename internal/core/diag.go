package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"sync/atomic"
	"time"

	"lciot/internal/telemetry"
)

// Continuous diagnostic capture: when the domain's health crosses to a
// worse rung, or lane-load skew exceeds the threshold under real load, the
// domain snapshots the evidence an operator needs for a post-hoc diagnosis
// — the health report, the skew report, the span ring, a heap profile and
// a short CPU profile — into DataDir/diag/<unixnano>-<reason>/. The
// capture runs on its own goroutine (the health poll that noticed the
// transition is not delayed), at most one at a time, and the directory is
// pruned to diagKeep snapshots BEFORE a new one is created, so the
// retention cap holds even if the process dies mid-capture. Domains
// without a DataDir never capture.

const (
	// diagKeep bounds retained snapshot directories under DataDir/diag.
	diagKeep = 5
	// diagSkewMinLoad gates skew captures on real traffic: a near-idle
	// domain's imbalance is noise, not signal.
	diagSkewMinLoad = 10000
)

// Capture tuning; package variables so tests can shrink them.
var (
	// diagCPUProfileNs is how long the CPU profile samples (nanoseconds;
	// atomic because captures run on their own goroutines). The profile is
	// written last and best-effort: if the process dies mid-profile the
	// earlier files still land, and if another capture (or the operator's
	// /debug/pprof) already holds the process-wide CPU profiler, the file
	// is simply left empty.
	diagCPUProfileNs atomic.Int64
	// diagSkewThreshold is the Gini-style imbalance above which a capture
	// triggers (0.5 ≈ one lane carrying most of the load).
	diagSkewThreshold = 0.5
	// diagSkewDebounce is the minimum spacing between skew evaluations —
	// skew moves slowly, and each evaluation costs a SkewReport scan.
	diagSkewDebounce = 30 * time.Second
)

func init() { diagCPUProfileNs.Store(int64(5 * time.Second)) }

// maybeCaptureDiag starts an asynchronous diagnostic capture, unless one
// is already running or the domain has no DataDir. Safe to call from any
// goroutine, including under healthMu.
func (d *Domain) maybeCaptureDiag(reason string) {
	if d.dataDir == "" {
		return
	}
	if !d.diagInflight.CompareAndSwap(false, true) {
		return
	}
	go d.captureDiag(reason)
}

// checkSkewDiag evaluates the skew trigger at most once per debounce
// window. Called from Health polls, so a status loop's cadence drives it
// without a dedicated timer goroutine.
func (d *Domain) checkSkewDiag() {
	if d.dataDir == "" {
		return
	}
	now := time.Now().UnixNano()
	last := d.diagLastSkewNs.Load()
	if now-last < int64(diagSkewDebounce) {
		return
	}
	if !d.diagLastSkewNs.CompareAndSwap(last, now) {
		return // another poll won this window
	}
	r := d.SkewReport()
	if r.TotalLoad() >= diagSkewMinLoad && r.Imbalance > diagSkewThreshold {
		d.maybeCaptureDiag("skew")
	}
}

// captureDiag writes one snapshot directory. Runs on its own goroutine;
// diagInflight is held for the duration.
func (d *Domain) captureDiag(reason string) {
	defer d.diagInflight.Store(false)
	root := filepath.Join(d.dataDir, "diag")
	// Prune FIRST, to diagKeep-1, then create: the directory count never
	// exceeds diagKeep, even observed mid-capture or after a crash.
	pruneDiag(root, diagKeep-1)
	dir := filepath.Join(root, fmt.Sprintf("%d-%s", time.Now().UnixNano(), reason))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	// Cheap, state-describing files first; profiles after, CPU last — a
	// capture cut short by process death still leaves the state files.
	writeDiagJSON(filepath.Join(dir, "health.json"), d.Health())
	writeDiagJSON(filepath.Join(dir, "skew.json"), d.SkewReport())
	writeDiagJSON(filepath.Join(dir, "spans.json"), telemetry.Spans())
	if f, err := os.Create(filepath.Join(dir, "heap.pprof")); err == nil {
		_ = pprof.WriteHeapProfile(f)
		f.Close()
	}
	if f, err := os.Create(filepath.Join(dir, "cpu.pprof")); err == nil {
		if pprof.StartCPUProfile(f) == nil {
			time.Sleep(time.Duration(diagCPUProfileNs.Load()))
			pprof.StopCPUProfile()
		}
		f.Close()
	}
}

// writeDiagJSON marshals v into path, best-effort.
func writeDiagJSON(path string, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return
	}
	_ = os.WriteFile(path, data, 0o644)
}

// pruneDiag removes the oldest snapshot directories until at most keep
// remain. Names lead with a fixed-width UnixNano timestamp, so
// lexicographic order is age order.
func pruneDiag(root string, keep int) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	if len(names) <= keep {
		return
	}
	sort.Strings(names)
	for _, n := range names[:len(names)-keep] {
		_ = os.RemoveAll(filepath.Join(root, n))
	}
}

// DiagDir returns the domain's diagnostic capture directory ("" without a
// DataDir). Snapshots appear under it as <unixnano>-<reason>/.
func (d *Domain) DiagDir() string {
	if d.dataDir == "" {
		return ""
	}
	return filepath.Join(d.dataDir, "diag")
}
