package core

import (
	"fmt"
	"testing"

	"lciot/internal/ifc"
	"lciot/internal/lanehash"
	"lciot/internal/msg"
	"lciot/internal/sbus"
)

// nameOnLane finds a component name with the given prefix that lanehash
// homes on the wanted lane, so a test can pin placement deliberately.
func nameOnLane(prefix string, lane, lanes int) string {
	for i := 0; ; i++ {
		name := fmt.Sprintf("%s-%d", prefix, i)
		if lanehash.Index(name, lanes) == lane {
			return name
		}
	}
}

// skewDomain builds a 4-shard domain with one source→sink pair homed on
// each lane (source and sink share the lane, keeping every per-lane
// counter symmetric under a balanced load), and returns the per-lane
// source components and sink names.
func skewDomain(t *testing.T) (*Domain, [4]*sbus.Component, [4]string) {
	t.Helper()
	const shards = 4
	d, err := NewDomain("skew", Options{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	ctx := ifc.MustContext([]ifc.Tag{"telemetry"}, nil)
	var srcs [4]*sbus.Component
	var sinks [4]string
	for lane := 0; lane < shards; lane++ {
		srcName := nameOnLane(fmt.Sprintf("src%d", lane), lane, shards)
		sinks[lane] = nameOnLane(fmt.Sprintf("sink%d", lane), lane, shards)
		srcs[lane], err = d.Bus().Register(srcName, "skew", ctx, nil,
			sbus.EndpointSpec{Name: "out", Dir: sbus.Source, Schema: telemetrySchema()})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Bus().Register(sinks[lane], "skew", ctx, nil,
			sbus.EndpointSpec{Name: "in", Dir: sbus.Sink, Schema: telemetrySchema()}); err != nil {
			t.Fatal(err)
		}
		if err := d.Bus().Connect(PolicyEnginePrincipal, srcName+".out", sinks[lane]+".in"); err != nil {
			t.Fatal(err)
		}
	}
	return d, srcs, sinks
}

func publishOn(t *testing.T, src *sbus.Component, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		m := msg.New("telemetry").Set("device", msg.Str("d")).Set("value", msg.Float(1))
		if _, err := src.Publish("out", m); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSkewReportPinsHotLane is the acceptance differential: the same
// 4-shard topology under a balanced load reports near-zero imbalance,
// and after a deliberately hot-homed component soaks up the traffic the
// report's imbalance rises past the alerting range and Hottest names
// exactly that component on exactly its lane.
func TestSkewReportPinsHotLane(t *testing.T) {
	const hotLane = 2
	d, srcs, sinks := skewDomain(t)

	for _, src := range srcs {
		publishOn(t, src, 25)
	}
	d.Log().Flush()
	balanced := d.SkewReport()
	if len(balanced.Lanes) != 4 {
		t.Fatalf("lanes = %d, want 4", len(balanced.Lanes))
	}
	if balanced.TotalLoad() == 0 {
		t.Fatal("balanced load not recorded")
	}
	if balanced.Imbalance > 0.05 {
		t.Fatalf("balanced imbalance = %.3f, want ~0", balanced.Imbalance)
	}

	publishOn(t, srcs[hotLane], 500)
	d.Log().Flush()
	hot := d.SkewReport()
	if hot.Imbalance <= balanced.Imbalance+0.3 {
		t.Fatalf("hot imbalance = %.3f (balanced %.3f): skew not surfaced",
			hot.Imbalance, balanced.Imbalance)
	}
	if hot.MaxLoad == 0 || float64(hot.MaxLoad) <= hot.MeanLoad {
		t.Fatalf("max/mean = %d/%.1f: hot lane not above the mean", hot.MaxLoad, hot.MeanLoad)
	}
	if hot.Lanes[hotLane].Load() != hot.MaxLoad {
		t.Fatalf("lane %d load = %d, MaxLoad = %d: hot lane is not the max",
			hotLane, hot.Lanes[hotLane].Load(), hot.MaxLoad)
	}
	if len(hot.Hottest) == 0 {
		t.Fatal("no hottest components reported")
	}
	if got := hot.Hottest[0]; got.Name != sinks[hotLane] || got.Lane != hotLane {
		t.Fatalf("Hottest[0] = %q on lane %d, want %q on lane %d",
			got.Name, got.Lane, sinks[hotLane], hotLane)
	}
	if hot.Hottest[0].Deliveries != 525 {
		t.Fatalf("hottest deliveries = %d, want 525", hot.Hottest[0].Deliveries)
	}
}
