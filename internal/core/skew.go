package core

import "lciot/internal/telemetry"

// SkewReport rolls the per-shard / per-lane load counters every parallel
// subsystem already maintains — bus shard deliveries and handoffs, CEP
// lane evaluations, policy lane firings, audit staging-lane ingest — into
// one telemetry.SkewReport. The lanehash placement aligns all four tiers,
// so lane i's row is the load of one coherent pipeline slice: a hot
// component shows up as one hot row, and Hottest names it. The scan is
// cheap (atomic loads plus brief lane locks on the audit tier), so status
// loops and scrape endpoints can call this every few seconds.
func (d *Domain) SkewReport() telemetry.SkewReport {
	shards := d.bus.ShardStats()
	evals := d.cep.LaneEvals()
	firings := d.eng.LaneFirings()
	ingest := d.log.LaneStats()
	lanes := make([]telemetry.LaneLoad, len(shards))
	for i := range shards {
		lanes[i] = telemetry.LaneLoad{
			Lane:       i,
			Deliveries: shards[i].Delivered,
			Handoffs:   shards[i].HandoffsIn,
		}
		// The tiers are sized together at construction, but guard anyway:
		// a shared audit log may carry more staging lanes than this bus
		// has shards (SetStagingLanes keeps the larger tier).
		if i < len(evals) {
			lanes[i].CEPEvals = evals[i]
		}
		if i < len(firings) {
			lanes[i].RuleFirings = firings[i]
		}
		if i < len(ingest) {
			lanes[i].StagedRecords = ingest[i].Records
			lanes[i].StagedBytes = ingest[i].Bytes
		}
	}
	return telemetry.ComputeSkew(lanes, d.bus.HotComponents(hotComponentsK))
}

// hotComponentsK is how many hottest components a skew report names.
const hotComponentsK = 5
