package core

import (
	"testing"
	"time"

	"lciot/internal/cep"
	"lciot/internal/msg"
	"lciot/internal/sbus"
	"lciot/internal/telemetry"
)

// stageArmed enables telemetry recording and every-publish stage sampling
// for one test, restoring both afterwards.
func stageArmed(t *testing.T) {
	t.Helper()
	prev := telemetry.Enabled()
	telemetry.Enable()
	telemetry.SetStageSampling(1)
	t.Cleanup(func() {
		telemetry.SetStageSampling(0)
		if !prev {
			telemetry.Disable()
		}
	})
}

// stageEdgeStats reads the current (sum, count) of every local stage-edge
// histogram from the default registry.
func stageEdgeStats(t *testing.T) (map[string]uint64, map[string]uint64) {
	t.Helper()
	sums := map[string]uint64{}
	counts := map[string]uint64{}
	snap := telemetry.Snapshot()
	for _, name := range telemetry.StageEdges() {
		if m, ok := telemetry.Find(snap, name); ok && m.Hist != nil {
			sums[name] = m.Hist.Sum
			counts[name] = m.Hist.Count
		}
	}
	return sums, counts
}

// TestStageClockTelescopesAcrossRelay pins the stage clock's core
// arithmetic property on a two-hop pipeline: device → relay (sink that
// republishes) → collector (sink that feeds CEP) → detection → policy →
// audit commit. Every edge observation is a telescoping difference off
// one shared clock, so the per-edge histogram sums must add up EXACTLY to
// the clock's last hop minus its arm time — the hop latencies sum to the
// end-to-end latency, no gaps and no double counting.
func TestStageClockTelescopesAcrossRelay(t *testing.T) {
	stageArmed(t)
	clock := newTestClock()
	d := newDomain(t, clock)
	defer d.Close()

	d.RegisterPattern(&cep.Threshold{
		PatternName: "relay-seen",
		Sources:     []string{"relay-probe"},
		Count:       1, Window: time.Minute,
	})
	if err := d.LoadPolicy(`rule "relay-react" { on event "relay-seen" do alert "relayed" }`); err != nil {
		t.Fatal(err)
	}

	dev, err := d.Bus().Register("dev", "hospital", annCtx(), nil,
		sbus.EndpointSpec{Name: "out", Dir: sbus.Source, Schema: vitalsSchema()})
	if err != nil {
		t.Fatal(err)
	}
	// The relay republishes each delivered message on its own source
	// endpoint; publish keeps an already-armed clock, so the second hop's
	// deliver mark lands on the same clock as the first.
	var relay *sbus.Component
	relay, err = d.Bus().Register("relay", "hospital", annCtx(),
		func(m *msg.Message, _ sbus.Delivery) {
			if _, err := relay.Publish("out", m); err != nil {
				t.Errorf("relay republish: %v", err)
			}
		},
		sbus.EndpointSpec{Name: "in", Dir: sbus.Sink, Schema: vitalsSchema()},
		sbus.EndpointSpec{Name: "out", Dir: sbus.Source, Schema: vitalsSchema()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Bus().Register("collector", "hospital", annCtx(),
		func(m *msg.Message, _ sbus.Delivery) {
			d.FeedEvent(cep.Event{
				Type: "vitals", Source: "relay-probe",
				Time: clock.Now(), Value: 1, Stage: m.Stage,
			})
		},
		sbus.EndpointSpec{Name: "in", Dir: sbus.Sink, Schema: vitalsSchema()}); err != nil {
		t.Fatal(err)
	}
	if err := d.Bus().Connect(PolicyEnginePrincipal, "dev.out", "relay.in"); err != nil {
		t.Fatal(err)
	}
	if err := d.Bus().Connect(PolicyEnginePrincipal, "relay.out", "collector.in"); err != nil {
		t.Fatal(err)
	}

	sumsBefore, countsBefore := stageEdgeStats(t)

	m := msg.New("vitals").Set("patient", msg.Str("ann")).Set("heart-rate", msg.Float(72))
	if _, err := dev.Publish("out", m); err != nil {
		t.Fatal(err)
	}
	if m.Stage == nil {
		t.Fatal("publish at stage sampling 1 left no clock on the message")
	}
	// Single-shard delivery runs inline, so detection and the policy
	// decision happened inside Publish; only the audit commit is async.
	if alerts := d.Alerts(); len(alerts) != 1 || alerts[0] != "relayed" {
		t.Fatalf("alerts = %v, want [relayed]", alerts)
	}
	d.Log().Flush() // the drain marks decide→audit before advancing the watermark

	sumsAfter, countsAfter := stageEdgeStats(t)
	// Two deliver hops (relay, collector), one detect, one decide, and two
	// audit commits (each delivery record carries the clock).
	wantCounts := map[string]uint64{
		"stage_publish_deliver_ns": 2,
		"stage_deliver_detect_ns":  1,
		"stage_detect_decide_ns":   1,
		"stage_decide_audit_ns":    2,
	}
	var total uint64
	for _, name := range telemetry.StageEdges() {
		if got := countsAfter[name] - countsBefore[name]; got != wantCounts[name] {
			t.Errorf("%s observations = %d, want %d", name, got, wantCounts[name])
		}
		total += sumsAfter[name] - sumsBefore[name]
	}
	want := uint64(m.Stage.LastNs() - m.Stage.ArmNs())
	if total != want {
		t.Fatalf("edge sums total %dns, want exactly end-to-end %dns (last-arm)", total, want)
	}
	if want == 0 {
		t.Fatal("end-to-end latency is zero; the clock never advanced")
	}
}

// TestStageSamplingDark pins the disabled default: with stage sampling
// off, publishes arm no clock and the stage histograms stay silent.
func TestStageSamplingDark(t *testing.T) {
	prev := telemetry.Enabled()
	telemetry.Enable()
	t.Cleanup(func() {
		if !prev {
			telemetry.Disable()
		}
	})
	if got := telemetry.StageSampling(); got != 0 {
		t.Fatalf("default stage sampling = %d, want 0", got)
	}
	clock := newTestClock()
	d, src := obligationDomain(t, t.TempDir(), clock)
	defer d.Close()
	_, before := stageEdgeStats(t)
	publishTelemetry(t, src, "dark-dev", 10)
	d.Log().Flush()
	_, after := stageEdgeStats(t)
	for _, name := range telemetry.StageEdges() {
		if after[name] != before[name] {
			t.Fatalf("%s observed %d new values with sampling off", name, after[name]-before[name])
		}
	}
}
