// Package core is the paper's primary contribution assembled: a policy-
// driven middleware in which law- and preference-derived policy (package
// policy) drives dynamic reconfiguration of an IFC-enforcing messaging
// substrate (package sbus), with event detection (package cep), context
// (package ctxmodel), devices (package device) and system-wide audit
// (package audit) closing the Fig. 1 loop:
//
//	obligations/preferences → policy → enforcement → audit → verification
//
// The unit of deployment is the Domain: one administrative domain running
// one bus, one policy engine, one context store and one audit log. Domains
// federate by linking buses (after mutual attestation), giving the
// end-to-end, cross-domain enforcement the paper argues for.
//
// # Wiring
//
// NewDomain assembles the subsystems so that one number — Options.Shards
// — sizes every parallel tier consistently:
//
//	bus shards            sbus.NewShardedBus(name, Shards, ...)
//	CEP dispatch lanes    cep.NewShardedEngine(Shards, handler)
//	policy index lanes    policy.WithDispatchLanes(Shards)
//	audit staging lanes   log.SetStagingLanes(Shards) (done by the bus)
//
// All four tiers place by the same FNV-1a name hash (internal/lanehash),
// so a component's messages, the events they raise, the patterns watching
// those events and the rules those detections trigger all live on the
// same lane index. A shard dispatcher delivering a message can therefore
// run the whole detection → policy → obligation pipeline without leaving
// its lane: the CEP engine locks only that lane, the policy trigger
// lookup is an atomic snapshot read, and the audit record is staged in
// that lane's buffer for chain-ordered merge. Shards <= 1 degenerates to
// the classic single-threaded domain, where every delivery is synchronous
// on the publisher's goroutine.
//
// The remaining glue is deliberately synchronous and serialized where
// correctness needs it: context-change hooks run on the mutating
// goroutine (deterministic rule feedback), the obligation sweep holds
// sweepMu against Close, and audit chain-head assignment stays a single
// point even though staging is per-lane.
package core
