package core

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"lciot/internal/cep"
	"lciot/internal/lanehash"
)

// parallelPolicySrc arms one rule per pattern plus distractors that never
// match, so the fired set is a sharp signal.
func parallelPolicySrc(patterns int) string {
	src := ""
	for i := 0; i < patterns; i++ {
		src += fmt.Sprintf("rule \"react-%d\" { on event \"pat-%d\" do alert \"alert-%d\" }\n", i, i, i)
		src += fmt.Sprintf("rule \"idle-%d\" { on event \"pat-%d\" when event.value > 1000 do alert \"never\" }\n", i, i)
	}
	return src
}

// runParallelDomain builds a domain at the given shard width, registers
// one source-pinned pattern per lane, feeds each source concurrently and
// returns (sorted alerts, fired counts, chain error).
func runParallelDomain(t *testing.T, shards, patterns, perSource int) ([]string, map[string]uint64) {
	t.Helper()
	d, err := NewDomain(fmt.Sprintf("par-%d", shards), Options{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.LoadPolicy(parallelPolicySrc(patterns)); err != nil {
		t.Fatal(err)
	}
	sources := make([]string, patterns)
	for i := range sources {
		sources[i] = fmt.Sprintf("src-%d", i)
		d.RegisterPattern(&cep.Threshold{
			PatternName: fmt.Sprintf("pat-%d", i),
			Sources:     []string{sources[i]},
			Count:       1, Window: time.Minute,
		})
	}
	var wg sync.WaitGroup
	for i := range sources {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perSource; j++ {
				d.FeedEvent(cep.Event{Source: sources[i], Time: time.Now(), Value: 1})
			}
		}(i)
	}
	wg.Wait()
	if seq, err := d.Log().Verify(); err != nil {
		t.Fatalf("shards=%d: audit chain broken at %d: %v", shards, seq, err)
	}
	alerts := d.Alerts()
	sort.Strings(alerts)
	counts := map[string]uint64{}
	for i := 0; i < patterns; i++ {
		counts[fmt.Sprintf("react-%d", i)] = d.PolicyEngine().FiredCount(fmt.Sprintf("react-%d", i))
		counts[fmt.Sprintf("idle-%d", i)] = d.PolicyEngine().FiredCount(fmt.Sprintf("idle-%d", i))
	}
	return alerts, counts
}

// TestParallelDispatchDifferential runs the same workload through a
// single-shard and a 4-shard domain: the full detection → policy →
// obligation pipeline must fire the exact same rule set the same number
// of times, and both audit chains must verify. Run under -race this also
// proves the pipeline data-race-free end to end.
func TestParallelDispatchDifferential(t *testing.T) {
	const (
		patterns  = 8
		perSource = 25
	)
	a1, c1 := runParallelDomain(t, 1, patterns, perSource)
	a4, c4 := runParallelDomain(t, 4, patterns, perSource)

	if len(a1) != patterns*perSource {
		t.Fatalf("single-shard alerts = %d, want %d", len(a1), patterns*perSource)
	}
	if fmt.Sprint(a1) != fmt.Sprint(a4) {
		t.Fatalf("alert multisets differ: %d vs %d", len(a1), len(a4))
	}
	if fmt.Sprint(c1) != fmt.Sprint(c4) {
		t.Fatalf("fired counts differ:\n1 shard:  %v\n4 shards: %v", c1, c4)
	}
	for i := 0; i < patterns; i++ {
		if got := c4[fmt.Sprintf("react-%d", i)]; got != perSource {
			t.Fatalf("react-%d fired %d, want %d", i, got, perSource)
		}
		if got := c4[fmt.Sprintf("idle-%d", i)]; got != 0 {
			t.Fatalf("idle-%d fired %d, want 0 (guard must block)", i, got)
		}
	}
}

// TestParallelLaneAlignment pins the compile-time placement contract the
// doc.go wiring map promises: the domain's CEP lane for a source equals
// the bus shard the same name would map to.
func TestParallelLaneAlignment(t *testing.T) {
	d, err := NewDomain("align", Options{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for _, name := range []string{"ecg", "door-sensor", "thermostat", "a", "zz-9"} {
		if got, want := d.cep.LaneOf(name), lanehash.Index(name, 8); got != want {
			t.Fatalf("source %q: CEP lane %d, lanehash %d", name, got, want)
		}
	}
}
