package core

import (
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"lciot/internal/fault"
)

// shrinkCPUProfile makes diagnostic captures fast for one test.
func shrinkCPUProfile(t *testing.T) {
	t.Helper()
	prev := diagCPUProfileNs.Load()
	diagCPUProfileNs.Store(int64(10 * time.Millisecond))
	t.Cleanup(func() { diagCPUProfileNs.Store(prev) })
}

// TestDiagCaptureOnDegradation walks the audit store down a rung (as the
// health ladder test does) and asserts the transition left a diagnostic
// snapshot under DataDir/diag: the state files an operator reads first
// must be present and the directory name must carry the reason.
func TestDiagCaptureOnDegradation(t *testing.T) {
	defer fault.DisarmAll()
	shrinkCPUProfile(t)
	clock := newTestClock()
	dir := t.TempDir()
	d, src := obligationDomain(t, dir, clock)

	if got, want := d.DiagDir(), filepath.Join(dir, "diag"); got != want {
		t.Fatalf("DiagDir = %q, want %q", got, want)
	}
	d.Health() // establish the ok baseline so the rung change is a transition

	fault.Arm("store.wal.write", fault.Always(fault.Action{Err: fault.Wrap(syscall.ENOSPC)}))
	publishTelemetry(t, src, "pump-1", 5)
	d.Log().Flush()
	_ = d.AuditStore().Sync() // surfaces (and latches) the degraded state
	publishTelemetry(t, src, "pump-1", 5)
	d.Log().Flush()
	d.Health() // the ok→degraded transition triggers the capture

	var snap string
	deadline := time.Now().Add(10 * time.Second)
	for snap == "" {
		if entries, err := os.ReadDir(d.DiagDir()); err == nil && len(entries) > 0 {
			snap = filepath.Join(d.DiagDir(), entries[0].Name())
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no diagnostic capture appeared after the degradation transition")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !strings.HasSuffix(filepath.Base(snap), "-degraded") {
		t.Fatalf("snapshot dir %q does not carry the transition reason", filepath.Base(snap))
	}
	// The capture runs asynchronously, state files first; wait for the
	// last file (the CPU profile) and then check the full set.
	for {
		if _, err := os.Stat(filepath.Join(snap, "cpu.pprof")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("capture %s did not complete", snap)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, name := range []string{"health.json", "skew.json", "spans.json", "heap.pprof"} {
		st, err := os.Stat(filepath.Join(snap, name))
		if err != nil {
			t.Fatalf("capture missing %s: %v", name, err)
		}
		if name != "heap.pprof" && st.Size() == 0 {
			t.Fatalf("capture %s is empty", name)
		}
	}
	health, err := os.ReadFile(filepath.Join(snap, "health.json"))
	if err != nil || !strings.Contains(string(health), "audit-store") {
		t.Fatalf("health.json = %q, %v: want the ladder report", health, err)
	}
}

// TestDiagRetentionCap hammers captureDiag past the cap and asserts the
// snapshot directory never holds more than diagKeep entries — the prune
// runs before each capture, so the bound holds even mid-capture.
func TestDiagRetentionCap(t *testing.T) {
	prev := diagCPUProfileNs.Load()
	diagCPUProfileNs.Store(0)
	t.Cleanup(func() { diagCPUProfileNs.Store(prev) })
	d, err := NewDomain("diag-ret", Options{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := 0; i < diagKeep+3; i++ {
		d.captureDiag("test")
		entries, err := os.ReadDir(d.DiagDir())
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) > diagKeep {
			t.Fatalf("after capture %d: %d snapshots retained, cap is %d",
				i+1, len(entries), diagKeep)
		}
	}
	entries, _ := os.ReadDir(d.DiagDir())
	if len(entries) != diagKeep {
		t.Fatalf("retained %d snapshots, want exactly %d", len(entries), diagKeep)
	}
}

// TestDiagNoDataDirNeverCaptures pins the gate: an in-memory domain has
// nowhere to write, so a transition must not spawn a capture goroutine.
func TestDiagNoDataDirNeverCaptures(t *testing.T) {
	clock := newTestClock()
	d := newDomain(t, clock)
	defer d.Close()
	if d.DiagDir() != "" {
		t.Fatalf("DiagDir = %q on a domain without a DataDir", d.DiagDir())
	}
	d.maybeCaptureDiag("degraded")
	if d.diagInflight.Load() {
		t.Fatal("capture in flight on a domain without a DataDir")
	}
}
