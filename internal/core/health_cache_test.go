package core

import (
	"sync"
	"testing"
)

// TestHealthCachedAllocBounded is the regression test for the old
// rebuild-every-poll behaviour: in a stable domain, repeated Health()
// calls must hit the fingerprint cache and stay allocation-bounded (the
// copy of the cached report, not a fresh formatted rebuild).
func TestHealthCachedAllocBounded(t *testing.T) {
	clock := newTestClock()
	d, src := obligationDomain(t, t.TempDir(), clock)
	publishTelemetry(t, src, "pump-1", 5)
	d.Log().Flush()
	if err := d.AuditStore().Sync(); err != nil {
		t.Fatal(err)
	}

	d.Health() // warm the cache
	allocs := testing.AllocsPerRun(200, func() { d.Health() })
	if allocs > 2 {
		t.Fatalf("Health() on the cached path allocates %.1f objects per call, want <= 2", allocs)
	}
}

// TestHealthCacheCopiesAndInvalidates: the cached path must hand out
// copies (a caller mutating the report cannot poison the cache), and a
// real state change must invalidate the fingerprint so the next poll
// rebuilds.
func TestHealthCacheCopiesAndInvalidates(t *testing.T) {
	clock := newTestClock()
	d, src := obligationDomain(t, t.TempDir(), clock)
	publishTelemetry(t, src, "pump-2", 3)
	d.Log().Flush()

	first := d.Health()
	first[0].Detail = "vandalised"
	first[0].State = HealthFailed
	second := d.Health()
	if second[0].Detail == "vandalised" || second[0].State == HealthFailed {
		t.Fatal("caller mutation leaked into the cached health report")
	}

	busDetail := func(report []SubsystemHealth) string {
		for _, h := range report {
			if h.Subsystem == "bus" {
				return h.Detail
			}
		}
		return ""
	}
	before := busDetail(second)
	publishTelemetry(t, src, "pump-2", 4) // moves the shard delivered totals
	after := busDetail(d.Health())
	if before == after {
		t.Fatalf("delivered-count change did not invalidate the cache (detail still %q)", after)
	}
}

// TestHealthConcurrentWithClose hammers Health() from several goroutines
// while the domain closes; under -race this proves the cached report and
// the fingerprint probes are safe against teardown.
func TestHealthConcurrentWithClose(t *testing.T) {
	clock := newTestClock()
	d, src := obligationDomain(t, t.TempDir(), clock)
	publishTelemetry(t, src, "pump-3", 5)

	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for j := 0; j < 200; j++ {
				report := d.Health()
				if len(report) != 4 {
					t.Errorf("health report has %d subsystems", len(report))
					return
				}
			}
		}()
	}
	close(start)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}
