package core

import (
	"sync"
	"testing"
	"time"
)

// TestCloseIdempotentAgainstConcurrentSweeps is the shutdown race test:
// Tick and SweepObligations hammer a durable domain from several
// goroutines while Close runs — repeatedly and concurrently — part way
// through. The contract: no panic, no sweep touching a closed store,
// every Close call returning the first call's result, and post-Close
// ticks/sweeps degrading to no-ops. Run under -race this also proves the
// sweepMu barrier actually orders sweeps against the store teardown.
func TestCloseIdempotentAgainstConcurrentSweeps(t *testing.T) {
	for iter := 0; iter < 5; iter++ {
		clock := newTestClock()
		d, src := obligationDomain(t, t.TempDir(), clock)
		publishTelemetry(t, src, "pump-7", 50)
		clock.Advance(2 * time.Hour) // every deadline is now due

		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 50; i++ {
					d.Tick()
					d.SweepObligations()
				}
			}()
		}
		errs := make([]error, 3)
		for g := range errs {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				time.Sleep(time.Duration(g) * 100 * time.Microsecond)
				errs[g] = d.Close()
			}(g)
		}
		close(start)
		wg.Wait()

		for g := 1; g < len(errs); g++ {
			if errs[g] != errs[0] {
				t.Fatalf("iter %d: Close results diverge: %v vs %v", iter, errs[0], errs[g])
			}
		}
		if errs[0] != nil {
			t.Fatalf("iter %d: Close: %v", iter, errs[0])
		}
		// After Close, both entry points are inert.
		d.Tick()
		if n := d.SweepObligations(); n != 0 {
			t.Fatalf("iter %d: sweep on closed domain executed %d deadlines", iter, n)
		}
		if err := d.Close(); err != nil {
			t.Fatalf("iter %d: repeat Close: %v", iter, err)
		}
	}
}
