package names

import (
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"lciot/internal/ifc"
)

// buildTree creates root → hospital.example → ward-a with records at each
// level, mirroring a federated IoT namespace.
func buildTree(t *testing.T) *Zone {
	t.Helper()
	root := NewRoot()
	if err := root.Register(TagRecord{Tag: "public", Owner: "internet", TTL: time.Hour}); err != nil {
		t.Fatal(err)
	}
	hosp, err := root.DelegatePath("hospital.example")
	if err != nil {
		t.Fatal(err)
	}
	if err := hosp.Register(TagRecord{
		Tag: "hospital.example/medical", Owner: "hospital", TTL: time.Hour,
	}); err != nil {
		t.Fatal(err)
	}
	ward, err := root.DelegatePath("hospital.example/ward-a")
	if err != nil {
		t.Fatal(err)
	}
	if err := ward.Register(TagRecord{
		Tag:       "hospital.example/ward-a/hiv-status",
		Owner:     "hospital",
		Sensitive: true,
		Readers:   []ifc.PrincipalID{"clinician"},
		TTL:       time.Hour,
	}); err != nil {
		t.Fatal(err)
	}
	return root
}

func TestZoneDelegationNaming(t *testing.T) {
	root := NewRoot()
	leaf, err := root.DelegatePath("a/b/c")
	if err != nil {
		t.Fatal(err)
	}
	if leaf.Name() != "a/b/c" {
		t.Fatalf("leaf name = %q", leaf.Name())
	}
	// Delegating the same path twice returns the same zone.
	again, err := root.DelegatePath("a/b/c")
	if err != nil {
		t.Fatal(err)
	}
	if leaf != again {
		t.Fatal("re-delegation created a new zone")
	}
	if _, err := root.Delegate("has/slash"); !errors.Is(err, ErrBadDelegation) {
		t.Fatalf("bad segment accepted: %v", err)
	}
	if _, err := root.Delegate(""); !errors.Is(err, ErrBadDelegation) {
		t.Fatalf("empty segment accepted: %v", err)
	}
}

func TestZoneRegisterValidation(t *testing.T) {
	root := NewRoot()
	// Tag with a namespace cannot be registered at the root.
	err := root.Register(TagRecord{Tag: "a/b", Owner: "x"})
	if !errors.Is(err, ErrBadDelegation) {
		t.Fatalf("mis-zoned registration = %v, want ErrBadDelegation", err)
	}
	if err := root.Register(TagRecord{Tag: "ok", Owner: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := root.Register(TagRecord{Tag: "ok", Owner: "y"}); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate registration = %v, want ErrExists", err)
	}
	if err := root.Register(TagRecord{Tag: "bad tag", Owner: "x"}); err == nil {
		t.Fatal("invalid tag accepted")
	}
}

func TestResolveWalksDelegations(t *testing.T) {
	root := buildTree(t)
	var visited []string
	r := NewResolver(root, WithHopDelay(func(zone string) { visited = append(visited, zone) }))

	rec, err := r.Resolve("anyone", "hospital.example/medical")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Owner != "hospital" {
		t.Fatalf("owner = %q", rec.Owner)
	}
	want := []string{"", "hospital.example"}
	if !reflect.DeepEqual(visited, want) {
		t.Fatalf("visited zones %v, want %v", visited, want)
	}
}

func TestResolveCaching(t *testing.T) {
	now := time.Unix(1000, 0)
	root := buildTree(t)
	r := NewResolver(root, WithClock(func() time.Time { return now }))

	for i := 0; i < 3; i++ {
		if _, err := r.Resolve("anyone", "hospital.example/medical"); err != nil {
			t.Fatal(err)
		}
	}
	s := r.Stats()
	if s.Misses != 1 || s.Hits != 2 {
		t.Fatalf("stats = %+v, want 1 miss / 2 hits", s)
	}

	// After TTL expiry the resolver must walk again.
	now = now.Add(2 * time.Hour)
	if _, err := r.Resolve("anyone", "hospital.example/medical"); err != nil {
		t.Fatal(err)
	}
	if s := r.Stats(); s.Misses != 2 {
		t.Fatalf("post-expiry misses = %d, want 2", s.Misses)
	}

	r.Flush()
	if _, err := r.Resolve("anyone", "hospital.example/medical"); err != nil {
		t.Fatal(err)
	}
	if s := r.Stats(); s.Misses != 3 {
		t.Fatalf("post-flush misses = %d, want 3", s.Misses)
	}
}

func TestResolveErrors(t *testing.T) {
	r := NewResolver(buildTree(t))
	if _, err := r.Resolve("p", "hospital.example/nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown tag = %v, want ErrNotFound", err)
	}
	if _, err := r.Resolve("p", "unknown.example/tag"); !errors.Is(err, ErrNoZone) {
		t.Fatalf("unknown zone = %v, want ErrNoZone", err)
	}
	if _, err := r.Resolve("p", "bad tag"); err == nil {
		t.Fatal("invalid tag resolved")
	}
}

func TestSensitiveRecordDisclosure(t *testing.T) {
	r := NewResolver(buildTree(t))
	const tag = ifc.Tag("hospital.example/ward-a/hiv-status")

	// The clinician on the reader list sees the record.
	rec, err := r.Resolve("clinician", tag)
	if err != nil {
		t.Fatalf("reader denied: %v", err)
	}
	if rec.Owner != "hospital" {
		t.Fatalf("reader got %+v", rec)
	}
	// The owner always sees it.
	if _, err := r.Resolve("hospital", tag); err != nil {
		t.Fatalf("owner denied: %v", err)
	}
	// Anyone else learns only existence.
	rec, err = r.Resolve("advertiser", tag)
	if !errors.Is(err, ErrRestricted) {
		t.Fatalf("stranger resolution = %v, want ErrRestricted", err)
	}
	if rec.Owner != "" || rec.Description != "" {
		t.Fatalf("restricted record leaked fields: %+v", rec)
	}
	if rec.Tag != tag {
		t.Fatalf("existence should still be confirmed, got %q", rec.Tag)
	}
}

func TestResolveLabel(t *testing.T) {
	r := NewResolver(buildTree(t))
	l := ifc.MustLabel("public", "hospital.example/medical")
	recs, err := r.ResolveLabel("anyone", l)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("resolved %d records, want 2", len(recs))
	}
	bad := ifc.MustLabel("public", "hospital.example/nope")
	if _, err := r.ResolveLabel("anyone", bad); !errors.Is(err, ErrNotFound) {
		t.Fatalf("bad label = %v, want ErrNotFound", err)
	}
}

func TestDefaultTTLApplied(t *testing.T) {
	root := NewRoot()
	if err := root.Register(TagRecord{Tag: "t", Owner: "x"}); err != nil {
		t.Fatal(err)
	}
	rec, ok := root.lookup("t")
	if !ok || rec.TTL != time.Minute {
		t.Fatalf("default TTL = %v, want 1m", rec.TTL)
	}
}

func TestZoneTagsSorted(t *testing.T) {
	root := NewRoot()
	for _, tag := range []ifc.Tag{"zz", "aa", "mm"} {
		if err := root.Register(TagRecord{Tag: tag, Owner: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	want := []ifc.Tag{"aa", "mm", "zz"}
	if got := root.Tags(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Tags() = %v", got)
	}
}

func TestResolverConcurrent(t *testing.T) {
	root := buildTree(t)
	r := NewResolver(root)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				if _, err := r.Resolve("anyone", "hospital.example/medical"); err != nil {
					t.Errorf("Resolve: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	s := r.Stats()
	if s.Hits+s.Misses != 1600 {
		t.Fatalf("hits+misses = %d, want 1600", s.Hits+s.Misses)
	}
}
