package names

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"lciot/internal/ifc"
)

// Errors reported by the namespace.
var (
	ErrNotFound      = errors.New("names: tag not found")
	ErrNoZone        = errors.New("names: no authoritative zone")
	ErrExists        = errors.New("names: record already exists")
	ErrRestricted    = errors.New("names: record restricted")
	ErrBadDelegation = errors.New("names: invalid delegation")
)

// A TagRecord is the authoritative description of a tag: who owns it, what
// it means, and how long resolvers may cache it.
type TagRecord struct {
	Tag         ifc.Tag
	Owner       ifc.PrincipalID
	Description string
	// Sensitive marks records whose meaning must not be revealed to
	// arbitrary principals (a tag may imply a medical condition). Sensitive
	// records resolve fully only for principals in Readers.
	Sensitive bool
	// Readers lists the principals allowed to resolve a sensitive record.
	Readers []ifc.PrincipalID
	// TTL bounds how long resolvers may cache this record.
	TTL time.Duration
	// Created is the registration time.
	Created time.Time
}

// readableBy reports whether the principal may see the full record.
func (r TagRecord) readableBy(p ifc.PrincipalID) bool {
	if !r.Sensitive || p == r.Owner {
		return true
	}
	for _, reader := range r.Readers {
		if reader == p {
			return true
		}
	}
	return false
}

// A Zone is an authoritative server for one namespace prefix. The zone with
// name "" is the root. Zones are safe for concurrent use.
type Zone struct {
	name string

	mu       sync.RWMutex
	records  map[ifc.Tag]TagRecord
	children map[string]*Zone // keyed by the next path segment
}

// NewRoot creates an empty root zone.
func NewRoot() *Zone {
	return &Zone{}
}

// Name returns the zone's namespace prefix ("" for the root).
func (z *Zone) Name() string { return z.name }

// Delegate creates (or returns) the child zone for the next namespace
// segment below this zone. Segments must be non-empty and slash-free.
func (z *Zone) Delegate(segment string) (*Zone, error) {
	if segment == "" || strings.ContainsRune(segment, '/') {
		return nil, fmt.Errorf("%w: segment %q", ErrBadDelegation, segment)
	}
	z.mu.Lock()
	defer z.mu.Unlock()
	if z.children == nil {
		z.children = make(map[string]*Zone)
	}
	if child, ok := z.children[segment]; ok {
		return child, nil
	}
	name := segment
	if z.name != "" {
		name = z.name + "/" + segment
	}
	child := &Zone{name: name}
	z.children[segment] = child
	return child, nil
}

// DelegatePath creates the whole chain of zones for a namespace such as
// "hospital.example/ward-a" and returns the leaf zone.
func (z *Zone) DelegatePath(namespace string) (*Zone, error) {
	cur := z
	if namespace == "" {
		return cur, nil
	}
	for _, seg := range strings.Split(namespace, "/") {
		next, err := cur.Delegate(seg)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return cur, nil
}

// Register adds an authoritative record for a tag whose namespace matches
// this zone. A zero TTL defaults to one minute.
func (z *Zone) Register(rec TagRecord) error {
	if err := rec.Tag.Validate(); err != nil {
		return err
	}
	if ns := rec.Tag.Namespace(); ns != z.name {
		return fmt.Errorf("%w: tag %q belongs to namespace %q, zone is %q",
			ErrBadDelegation, rec.Tag, ns, z.name)
	}
	if rec.TTL <= 0 {
		rec.TTL = time.Minute
	}
	z.mu.Lock()
	defer z.mu.Unlock()
	if z.records == nil {
		z.records = make(map[ifc.Tag]TagRecord)
	}
	if _, ok := z.records[rec.Tag]; ok {
		return fmt.Errorf("%w: %q", ErrExists, rec.Tag)
	}
	z.records[rec.Tag] = rec
	return nil
}

// lookup returns the record held by this zone.
func (z *Zone) lookup(t ifc.Tag) (TagRecord, bool) {
	z.mu.RLock()
	defer z.mu.RUnlock()
	rec, ok := z.records[t]
	return rec, ok
}

// child returns the delegated zone for a segment.
func (z *Zone) child(segment string) (*Zone, bool) {
	z.mu.RLock()
	defer z.mu.RUnlock()
	c, ok := z.children[segment]
	return c, ok
}

// Tags lists the tags registered directly in this zone, sorted.
func (z *Zone) Tags() []ifc.Tag {
	z.mu.RLock()
	defer z.mu.RUnlock()
	out := make([]ifc.Tag, 0, len(z.records))
	for t := range z.records {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
