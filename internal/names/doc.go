// Package names provides the global tag and policy namespace the paper's
// Challenge 1 calls for: "for security policy to apply at scale, throughout
// the IoT, there is a need for a global policy representation, including tag
// and privilege descriptions", suggesting "approaches akin to DNS and/or
// based on PKI".
//
// The namespace is a tree of authoritative zones. A zone owns a namespace
// prefix ("hospital.example", "hospital.example/ward-a") and records the
// tags minted under it, together with their owning principal, a human
// description, and a TTL. Zones delegate sub-namespaces to child zones,
// exactly as DNS delegates subdomains.
//
// Resolvers walk the delegation chain from the root and cache results by
// TTL. Because the visibility of a policy specification may itself be
// sensitive (Challenge 2: "a tag may imply a particular medical condition"),
// records can be marked sensitive, in which case resolution succeeds only
// for principals on the record's reader list; everyone else learns only
// that the tag exists.
package names
