package names

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"lciot/internal/ifc"
)

// A Resolver answers "what does this tag mean and who owns it?" by walking
// the zone delegation tree from a root, caching answers by TTL. One
// resolver is typically embedded per middleware node; the cache is what
// makes tag checks affordable on the data path (benchmark B6).
type Resolver struct {
	root *Zone
	// now is the clock, replaceable in tests.
	now func() time.Time
	// hopDelay, when non-nil, is invoked once per zone traversed on a cache
	// miss so benchmarks and simulations can model network distance.
	hopDelay func(zone string)

	mu    sync.Mutex
	cache map[ifc.Tag]cachedRecord
	stats ResolverStats
}

type cachedRecord struct {
	rec     TagRecord
	expires time.Time
}

// ResolverStats counts resolver activity for observability and benches.
type ResolverStats struct {
	Hits   uint64 // answered from cache
	Misses uint64 // required an authoritative walk
	Hops   uint64 // total zones traversed on misses
}

// ResolverOption configures a Resolver.
type ResolverOption func(*Resolver)

// WithClock replaces the resolver's clock; tests use it to force expiry.
func WithClock(now func() time.Time) ResolverOption {
	return func(r *Resolver) { r.now = now }
}

// WithHopDelay installs a per-zone-hop callback, letting simulations charge
// a latency per traversal.
func WithHopDelay(fn func(zone string)) ResolverOption {
	return func(r *Resolver) { r.hopDelay = fn }
}

// NewResolver builds a resolver rooted at the given zone tree.
func NewResolver(root *Zone, opts ...ResolverOption) *Resolver {
	r := &Resolver{
		root:  root,
		now:   time.Now,
		cache: make(map[ifc.Tag]cachedRecord),
	}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Resolve returns the authoritative record for the tag, on behalf of the
// requesting principal. Sensitive records are withheld from principals not
// on the reader list (ErrRestricted), revealing only the tag's existence.
func (r *Resolver) Resolve(requester ifc.PrincipalID, t ifc.Tag) (TagRecord, error) {
	if err := t.Validate(); err != nil {
		return TagRecord{}, err
	}
	now := r.now()

	r.mu.Lock()
	if c, ok := r.cache[t]; ok && now.Before(c.expires) {
		r.stats.Hits++
		r.mu.Unlock()
		return r.disclose(c.rec, requester)
	}
	r.mu.Unlock()

	rec, hops, err := r.walk(t)

	r.mu.Lock()
	r.stats.Misses++
	r.stats.Hops += uint64(hops)
	if err == nil {
		r.cache[t] = cachedRecord{rec: rec, expires: now.Add(rec.TTL)}
	}
	r.mu.Unlock()

	if err != nil {
		return TagRecord{}, err
	}
	return r.disclose(rec, requester)
}

// disclose applies the sensitivity check.
func (r *Resolver) disclose(rec TagRecord, requester ifc.PrincipalID) (TagRecord, error) {
	if rec.readableBy(requester) {
		return rec, nil
	}
	return TagRecord{Tag: rec.Tag, Sensitive: true},
		fmt.Errorf("%w: %q for principal %q", ErrRestricted, rec.Tag, requester)
}

// walk traverses the delegation chain to the authoritative zone.
func (r *Resolver) walk(t ifc.Tag) (TagRecord, int, error) {
	zone := r.root
	hops := 1
	if r.hopDelay != nil {
		r.hopDelay(zone.Name())
	}
	ns := t.Namespace()
	if ns != "" {
		for _, seg := range strings.Split(ns, "/") {
			child, ok := zone.child(seg)
			if !ok {
				return TagRecord{}, hops, fmt.Errorf("%w: for namespace %q (stopped at %q)", ErrNoZone, ns, zone.Name())
			}
			zone = child
			hops++
			if r.hopDelay != nil {
				r.hopDelay(zone.Name())
			}
		}
	}
	rec, ok := zone.lookup(t)
	if !ok {
		return TagRecord{}, hops, fmt.Errorf("%w: %q in zone %q", ErrNotFound, t, zone.Name())
	}
	return rec, hops, nil
}

// Stats returns a snapshot of resolver counters.
func (r *Resolver) Stats() ResolverStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Flush empties the cache; used after revocations and in tests.
func (r *Resolver) Flush() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cache = make(map[ifc.Tag]cachedRecord)
}

// ResolveLabel resolves every tag in a label, returning the first error.
// The middleware calls this when admitting a never-before-seen label at a
// domain boundary.
func (r *Resolver) ResolveLabel(requester ifc.PrincipalID, l ifc.Label) ([]TagRecord, error) {
	tags := l.Tags()
	out := make([]TagRecord, 0, len(tags))
	for _, t := range tags {
		rec, err := r.Resolve(requester, t)
		if err != nil {
			return nil, fmt.Errorf("label %s: %w", l, err)
		}
		out = append(out, rec)
	}
	return out, nil
}
