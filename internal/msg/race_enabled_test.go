//go:build race

package msg

// raceEnabled reports that the race detector is on; sync.Pool deliberately
// randomises item reuse under -race, so allocation-count assertions are
// skipped there.
const raceEnabled = true
