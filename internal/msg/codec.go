package msg

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
)

// This file provides the two wire encodings: JSON for interoperability and
// debugging, and a compact binary TLV encoding for the data path (benchmark
// B3 compares them).

// ErrCodec is the sentinel for malformed wire data.
var ErrCodec = errors.New("msg: malformed encoding")

// jsonMessage is the JSON wire schema.
type jsonMessage struct {
	Type   string               `json:"type"`
	DataID string               `json:"data_id,omitempty"`
	Attrs  map[string]jsonValue `json:"attrs"`
}

type jsonValue struct {
	T string  `json:"t"`
	S string  `json:"s,omitempty"`
	F float64 `json:"f,omitempty"`
	I int64   `json:"i,omitempty"`
	B bool    `json:"b,omitempty"`
	D string  `json:"d,omitempty"` // base64 bytes
}

// EncodeJSON renders the message as JSON.
func EncodeJSON(m *Message) ([]byte, error) {
	out := jsonMessage{Type: m.Type, DataID: m.DataID, Attrs: make(map[string]jsonValue, len(m.Attrs))}
	for k, v := range m.Attrs {
		jv := jsonValue{}
		switch v.Type {
		case TString:
			jv.T, jv.S = "s", v.Str
		case TFloat:
			jv.T, jv.F = "f", v.Float
		case TInt:
			jv.T, jv.I = "i", v.Int
		case TBool:
			jv.T, jv.B = "b", v.Bool
		case TBytes:
			jv.T, jv.D = "d", base64.StdEncoding.EncodeToString(v.Bytes)
		default:
			return nil, fmt.Errorf("msg: field %q has invalid type %d", k, v.Type)
		}
		out.Attrs[k] = jv
	}
	return json.Marshal(out)
}

// DecodeJSON parses a JSON-encoded message.
func DecodeJSON(data []byte) (*Message, error) {
	var in jsonMessage
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCodec, err)
	}
	m := &Message{Type: in.Type, DataID: in.DataID, Attrs: make(map[string]Value, len(in.Attrs))}
	for k, jv := range in.Attrs {
		switch jv.T {
		case "s":
			m.Attrs[k] = Str(jv.S)
		case "f":
			m.Attrs[k] = Float(jv.F)
		case "i":
			m.Attrs[k] = Int(jv.I)
		case "b":
			m.Attrs[k] = Bool(jv.B)
		case "d":
			b, err := base64.StdEncoding.DecodeString(jv.D)
			if err != nil {
				return nil, fmt.Errorf("%w: field %q: %v", ErrCodec, k, err)
			}
			m.Attrs[k] = Bytes(b)
		default:
			return nil, fmt.Errorf("%w: field %q has unknown type tag %q", ErrCodec, k, jv.T)
		}
	}
	return m, nil
}

// Binary layout:
//
//	u16 len(type) | type | u16 len(dataID) | dataID | u16 nattrs |
//	repeated: u16 len(name) | name | u8 fieldType | value
//
// where value is: u32 len + bytes (string/bytes), 8-byte IEEE754 (float),
// 8-byte two's complement (int), 1 byte (bool). Field order is sorted by
// name so the encoding is canonical.

// EncodeBinary renders the message in the compact binary form.
func EncodeBinary(m *Message) ([]byte, error) {
	names := m.FieldNames()
	buf := make([]byte, 0, 64+len(names)*16)
	buf = appendString16(buf, m.Type)
	buf = appendString16(buf, m.DataID)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(names)))
	for _, name := range names {
		v := m.Attrs[name]
		buf = appendString16(buf, name)
		buf = append(buf, byte(v.Type))
		switch v.Type {
		case TString:
			buf = binary.BigEndian.AppendUint32(buf, uint32(len(v.Str)))
			buf = append(buf, v.Str...)
		case TFloat:
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(v.Float))
		case TInt:
			buf = binary.BigEndian.AppendUint64(buf, uint64(v.Int))
		case TBool:
			if v.Bool {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		case TBytes:
			buf = binary.BigEndian.AppendUint32(buf, uint32(len(v.Bytes)))
			buf = append(buf, v.Bytes...)
		default:
			return nil, fmt.Errorf("msg: field %q has invalid type %d", name, v.Type)
		}
	}
	return buf, nil
}

// DecodeBinary parses the compact binary form.
func DecodeBinary(data []byte) (*Message, error) {
	d := &decoder{buf: data}
	typ, err := d.string16()
	if err != nil {
		return nil, err
	}
	dataID, err := d.string16()
	if err != nil {
		return nil, err
	}
	n, err := d.uint16()
	if err != nil {
		return nil, err
	}
	m := &Message{Type: typ, DataID: dataID, Attrs: make(map[string]Value, n)}
	for i := 0; i < int(n); i++ {
		name, err := d.string16()
		if err != nil {
			return nil, err
		}
		ft, err := d.byte()
		if err != nil {
			return nil, err
		}
		switch FieldType(ft) {
		case TString:
			s, err := d.bytes32()
			if err != nil {
				return nil, err
			}
			m.Attrs[name] = Str(string(s))
		case TFloat:
			u, err := d.uint64()
			if err != nil {
				return nil, err
			}
			m.Attrs[name] = Float(math.Float64frombits(u))
		case TInt:
			u, err := d.uint64()
			if err != nil {
				return nil, err
			}
			m.Attrs[name] = Int(int64(u))
		case TBool:
			b, err := d.byte()
			if err != nil {
				return nil, err
			}
			m.Attrs[name] = Bool(b != 0)
		case TBytes:
			b, err := d.bytes32()
			if err != nil {
				return nil, err
			}
			owned := make([]byte, len(b))
			copy(owned, b)
			m.Attrs[name] = Bytes(owned)
		default:
			return nil, fmt.Errorf("%w: field %q has type byte %d", ErrCodec, name, ft)
		}
	}
	if len(d.buf[d.off:]) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCodec, len(d.buf[d.off:]))
	}
	return m, nil
}

func appendString16(buf []byte, s string) []byte {
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

// decoder is a bounds-checked cursor.
type decoder struct {
	buf []byte
	off int
}

func (d *decoder) need(n int) error {
	if d.off+n > len(d.buf) {
		return fmt.Errorf("%w: truncated at offset %d", ErrCodec, d.off)
	}
	return nil
}

func (d *decoder) byte() (byte, error) {
	if err := d.need(1); err != nil {
		return 0, err
	}
	b := d.buf[d.off]
	d.off++
	return b, nil
}

func (d *decoder) uint16() (uint16, error) {
	if err := d.need(2); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v, nil
}

func (d *decoder) uint64() (uint64, error) {
	if err := d.need(8); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v, nil
}

func (d *decoder) string16() (string, error) {
	n, err := d.uint16()
	if err != nil {
		return "", err
	}
	if err := d.need(int(n)); err != nil {
		return "", err
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

func (d *decoder) bytes32() ([]byte, error) {
	if err := d.need(4); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	if err := d.need(int(n)); err != nil {
		return nil, err
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b, nil
}
