package msg

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"unicode/utf8"
)

// This file provides the two wire encodings: JSON for interoperability and
// debugging, and a compact binary TLV encoding for the data path (benchmark
// B3 compares them). Both encoders build their output in pooled scratch
// buffers — the returned slice is an exact-size copy, so steady-state
// encoding costs one allocation per message regardless of growth history.

// ErrCodec is the sentinel for malformed wire data.
var ErrCodec = errors.New("msg: malformed encoding")

// encScratch is the per-encode working set: the byte buffer the message is
// assembled in and the sorted field-name slice. Pooling both keeps encode
// allocations flat at one (the returned copy) per call.
type encScratch struct {
	buf   []byte
	names []string
}

var encPool = sync.Pool{New: func() any { return new(encScratch) }}

// maxPooledScratch and maxPooledNames bound retained scratch capacity so
// one huge message cannot pin a large buffer (or its attribute-name
// strings) in the pool forever.
const (
	maxPooledScratch = 1 << 16
	maxPooledNames   = 1 << 10
)

func putScratch(s *encScratch) {
	if cap(s.buf) > maxPooledScratch {
		s.buf = nil
	}
	if cap(s.names) > maxPooledNames {
		s.names = nil
	} else {
		// Drop the string headers so pooled scratch does not keep the last
		// message's attribute names reachable.
		clear(s.names[:cap(s.names)])
	}
	encPool.Put(s)
}

// sortedFieldNames fills dst with the message's attribute names, sorted.
func sortedFieldNames(dst []string, m *Message) []string {
	dst = dst[:0]
	for k := range m.Attrs {
		dst = append(dst, k)
	}
	sort.Strings(dst)
	return dst
}

// jsonMessage is the JSON wire schema.
type jsonMessage struct {
	Type   string               `json:"type"`
	DataID string               `json:"data_id,omitempty"`
	Attrs  map[string]jsonValue `json:"attrs"`
}

type jsonValue struct {
	T string  `json:"t"`
	S string  `json:"s,omitempty"`
	F float64 `json:"f,omitempty"`
	I int64   `json:"i,omitempty"`
	B bool    `json:"b,omitempty"`
	D string  `json:"d,omitempty"` // base64 bytes
}

// EncodeJSON renders the message as JSON on the same wire schema
// encoding/json produced for jsonMessage (attributes sorted by name, zero
// value members omitted), built by hand in a pooled buffer to avoid the
// intermediate map and reflection allocations of json.Marshal.
func (m *Message) appendJSON(buf []byte, names []string) ([]byte, []string, error) {
	buf = append(buf, `{"type":`...)
	buf = appendJSONString(buf, m.Type)
	if m.DataID != "" {
		buf = append(buf, `,"data_id":`...)
		buf = appendJSONString(buf, m.DataID)
	}
	buf = append(buf, `,"attrs":{`...)
	names = sortedFieldNames(names, m)
	for i, name := range names {
		v := m.Attrs[name]
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = appendJSONString(buf, name)
		switch v.Type {
		case TString:
			buf = append(buf, `:{"t":"s"`...)
			if v.Str != "" {
				buf = append(buf, `,"s":`...)
				buf = appendJSONString(buf, v.Str)
			}
		case TFloat:
			buf = append(buf, `:{"t":"f"`...)
			if v.Float != 0 {
				if math.IsNaN(v.Float) || math.IsInf(v.Float, 0) {
					return nil, names, fmt.Errorf("msg: field %q: unsupported float value %v", name, v.Float)
				}
				buf = append(buf, `,"f":`...)
				buf = appendJSONFloat(buf, v.Float)
			}
		case TInt:
			buf = append(buf, `:{"t":"i"`...)
			if v.Int != 0 {
				buf = append(buf, `,"i":`...)
				buf = strconv.AppendInt(buf, v.Int, 10)
			}
		case TBool:
			buf = append(buf, `:{"t":"b"`...)
			if v.Bool {
				buf = append(buf, `,"b":true`...)
			}
		case TBytes:
			buf = append(buf, `:{"t":"d"`...)
			if len(v.Bytes) > 0 {
				buf = append(buf, `,"d":"`...)
				buf = appendBase64(buf, v.Bytes)
				buf = append(buf, '"')
			}
		default:
			return nil, names, fmt.Errorf("msg: field %q has invalid type %d", name, v.Type)
		}
		buf = append(buf, '}')
	}
	buf = append(buf, "}}"...)
	return buf, names, nil
}

// EncodeJSON renders the message as JSON.
func EncodeJSON(m *Message) ([]byte, error) {
	s := encPool.Get().(*encScratch)
	buf, names, err := m.appendJSON(s.buf[:0], s.names)
	s.buf, s.names = buf, names
	if err != nil {
		putScratch(s)
		return nil, err
	}
	out := make([]byte, len(buf))
	copy(out, buf)
	putScratch(s)
	return out, nil
}

// appendJSONString appends s as a JSON string literal with the escaping
// json.Unmarshal round-trips: quote, backslash and control characters are
// escaped, invalid UTF-8 is replaced by U+FFFD (as encoding/json does).
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	start := 0
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' {
				i++
				continue
			}
			buf = append(buf, s[start:i]...)
			switch c {
			case '"':
				buf = append(buf, '\\', '"')
			case '\\':
				buf = append(buf, '\\', '\\')
			case '\n':
				buf = append(buf, '\\', 'n')
			case '\r':
				buf = append(buf, '\\', 'r')
			case '\t':
				buf = append(buf, '\\', 't')
			default:
				buf = append(buf, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			buf = append(buf, s[start:i]...)
			buf = append(buf, "�"...)
			i++
			start = i
			continue
		}
		i += size
	}
	buf = append(buf, s[start:]...)
	return append(buf, '"')
}

const hexDigits = "0123456789abcdef"

// appendJSONFloat appends a finite float in the shortest round-trippable
// decimal form; "e" exponents are valid JSON numbers.
func appendJSONFloat(buf []byte, f float64) []byte {
	return strconv.AppendFloat(buf, f, 'g', -1, 64)
}

// appendBase64 appends the standard base64 encoding of b without an
// intermediate string.
func appendBase64(buf []byte, b []byte) []byte {
	n := base64.StdEncoding.EncodedLen(len(b))
	off := len(buf)
	for cap(buf) < off+n {
		buf = append(buf[:cap(buf)], 0)
	}
	buf = buf[:off+n]
	base64.StdEncoding.Encode(buf[off:], b)
	return buf
}

// DecodeJSON parses a JSON-encoded message.
func DecodeJSON(data []byte) (*Message, error) {
	var in jsonMessage
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCodec, err)
	}
	m := &Message{Type: in.Type, DataID: in.DataID, Attrs: make(map[string]Value, len(in.Attrs))}
	for k, jv := range in.Attrs {
		switch jv.T {
		case "s":
			m.Attrs[k] = Str(jv.S)
		case "f":
			m.Attrs[k] = Float(jv.F)
		case "i":
			m.Attrs[k] = Int(jv.I)
		case "b":
			m.Attrs[k] = Bool(jv.B)
		case "d":
			b, err := base64.StdEncoding.DecodeString(jv.D)
			if err != nil {
				return nil, fmt.Errorf("%w: field %q: %v", ErrCodec, k, err)
			}
			m.Attrs[k] = Bytes(b)
		default:
			return nil, fmt.Errorf("%w: field %q has unknown type tag %q", ErrCodec, k, jv.T)
		}
	}
	return m, nil
}

// Binary layout:
//
//	u16 len(type) | type | u16 len(dataID) | dataID | u16 nattrs |
//	repeated: u16 len(name) | name | u8 fieldType | value
//
// where value is: u32 len + bytes (string/bytes), 8-byte IEEE754 (float),
// 8-byte two's complement (int), 1 byte (bool). Field order is sorted by
// name so the encoding is canonical.

// AppendBinary appends the compact binary form of m to dst and returns the
// extended slice, using the caller-supplied (possibly nil) names scratch
// for field sorting. Callers owning a reusable buffer encode with zero
// amortised allocations; EncodeBinary wraps this with a pooled scratch.
func AppendBinary(dst []byte, m *Message) ([]byte, error) {
	buf, _, err := appendBinary(dst, nil, m)
	return buf, err
}

func appendBinary(buf []byte, names []string, m *Message) ([]byte, []string, error) {
	names = sortedFieldNames(names, m)
	buf = appendString16(buf, m.Type)
	buf = appendString16(buf, m.DataID)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(names)))
	for _, name := range names {
		v := m.Attrs[name]
		buf = appendString16(buf, name)
		buf = append(buf, byte(v.Type))
		switch v.Type {
		case TString:
			buf = binary.BigEndian.AppendUint32(buf, uint32(len(v.Str)))
			buf = append(buf, v.Str...)
		case TFloat:
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(v.Float))
		case TInt:
			buf = binary.BigEndian.AppendUint64(buf, uint64(v.Int))
		case TBool:
			if v.Bool {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		case TBytes:
			buf = binary.BigEndian.AppendUint32(buf, uint32(len(v.Bytes)))
			buf = append(buf, v.Bytes...)
		default:
			return nil, names, fmt.Errorf("msg: field %q has invalid type %d", name, v.Type)
		}
	}
	return buf, names, nil
}

// EncodeBinary renders the message in the compact binary form.
func EncodeBinary(m *Message) ([]byte, error) {
	s := encPool.Get().(*encScratch)
	buf, names, err := appendBinary(s.buf[:0], s.names, m)
	s.buf, s.names = buf, names
	if err != nil {
		putScratch(s)
		return nil, err
	}
	out := make([]byte, len(buf))
	copy(out, buf)
	putScratch(s)
	return out, nil
}

// DecodeBinary parses the compact binary form.
func DecodeBinary(data []byte) (*Message, error) {
	d := &decoder{buf: data}
	typ, err := d.string16()
	if err != nil {
		return nil, err
	}
	dataID, err := d.string16()
	if err != nil {
		return nil, err
	}
	n, err := d.uint16()
	if err != nil {
		return nil, err
	}
	m := &Message{Type: typ, DataID: dataID, Attrs: make(map[string]Value, n)}
	for i := 0; i < int(n); i++ {
		name, err := d.string16()
		if err != nil {
			return nil, err
		}
		ft, err := d.byte()
		if err != nil {
			return nil, err
		}
		switch FieldType(ft) {
		case TString:
			s, err := d.bytes32()
			if err != nil {
				return nil, err
			}
			m.Attrs[name] = Str(string(s))
		case TFloat:
			u, err := d.uint64()
			if err != nil {
				return nil, err
			}
			m.Attrs[name] = Float(math.Float64frombits(u))
		case TInt:
			u, err := d.uint64()
			if err != nil {
				return nil, err
			}
			m.Attrs[name] = Int(int64(u))
		case TBool:
			b, err := d.byte()
			if err != nil {
				return nil, err
			}
			m.Attrs[name] = Bool(b != 0)
		case TBytes:
			b, err := d.bytes32()
			if err != nil {
				return nil, err
			}
			owned := make([]byte, len(b))
			copy(owned, b)
			m.Attrs[name] = Bytes(owned)
		default:
			return nil, fmt.Errorf("%w: field %q has type byte %d", ErrCodec, name, ft)
		}
	}
	if len(d.buf[d.off:]) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCodec, len(d.buf[d.off:]))
	}
	return m, nil
}

func appendString16(buf []byte, s string) []byte {
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

// decoder is a bounds-checked cursor.
type decoder struct {
	buf []byte
	off int
}

func (d *decoder) need(n int) error {
	if d.off+n > len(d.buf) {
		return fmt.Errorf("%w: truncated at offset %d", ErrCodec, d.off)
	}
	return nil
}

func (d *decoder) byte() (byte, error) {
	if err := d.need(1); err != nil {
		return 0, err
	}
	b := d.buf[d.off]
	d.off++
	return b, nil
}

func (d *decoder) uint16() (uint16, error) {
	if err := d.need(2); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v, nil
}

func (d *decoder) uint64() (uint64, error) {
	if err := d.need(8); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v, nil
}

func (d *decoder) string16() (string, error) {
	n, err := d.uint16()
	if err != nil {
		return "", err
	}
	if err := d.need(int(n)); err != nil {
		return "", err
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

func (d *decoder) bytes32() ([]byte, error) {
	if err := d.need(4); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	if err := d.need(int(n)); err != nil {
		return nil, err
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b, nil
}
