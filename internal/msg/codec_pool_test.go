package msg

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"math"
	"sync"
	"testing"
	"testing/quick"
)

// refEncodeJSON is the pre-pooling reference encoder: marshal the wire
// structs with encoding/json. The hand-rolled encoder must stay
// semantically identical to it (same decoded message, same wire schema).
func refEncodeJSON(m *Message) ([]byte, error) {
	out := jsonMessage{Type: m.Type, DataID: m.DataID, Attrs: make(map[string]jsonValue, len(m.Attrs))}
	for k, v := range m.Attrs {
		jv := jsonValue{}
		switch v.Type {
		case TString:
			jv.T, jv.S = "s", v.Str
		case TFloat:
			jv.T, jv.F = "f", v.Float
		case TInt:
			jv.T, jv.I = "i", v.Int
		case TBool:
			jv.T, jv.B = "b", v.Bool
		case TBytes:
			jv.T, jv.D = "d", base64.StdEncoding.EncodeToString(v.Bytes)
		default:
			return nil, ErrCodec
		}
		out.Attrs[k] = jv
	}
	return json.Marshal(out)
}

// TestEncodeJSONMatchesReference: for randomized messages, the hand-rolled
// encoder and the encoding/json reference must produce wire bytes that
// decode to identical messages, and both must be valid JSON.
func TestEncodeJSONMatchesReference(t *testing.T) {
	f := func(typ, dataID, s string, fl float64, i int64, bo bool, raw []byte) bool {
		if math.IsNaN(fl) || math.IsInf(fl, 0) {
			fl = 42
		}
		m := New(typ)
		m.DataID = dataID
		m.Set("s", Str(s)).Set("f", Float(fl)).Set("i", Int(i)).Set("b", Bool(bo)).Set("d", Bytes(raw))
		// Zero values too: the reference omits them (omitempty), the
		// hand-rolled encoder must round-trip them identically.
		m.Set("z0", Str("")).Set("z1", Float(0)).Set("z2", Int(0)).Set("z3", Bool(false)).Set("z4", Bytes(nil))

		got, err := EncodeJSON(m)
		if err != nil {
			return false
		}
		if !json.Valid(got) {
			t.Logf("invalid JSON: %s", got)
			return false
		}
		want, err := refEncodeJSON(m)
		if err != nil {
			return false
		}
		dGot, err := DecodeJSON(got)
		if err != nil {
			return false
		}
		dWant, err := DecodeJSON(want)
		if err != nil {
			return false
		}
		if dGot.Type != dWant.Type || dGot.DataID != dWant.DataID || len(dGot.Attrs) != len(dWant.Attrs) {
			return false
		}
		for k, v := range dWant.Attrs {
			if !dGot.Attrs[k].Equal(v) {
				t.Logf("attr %q: got %v want %v", k, dGot.Attrs[k], v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestEncodeJSONEscaping pins the tricky escapes: quotes, backslashes,
// control characters, and multi-byte runes must survive the round trip.
func TestEncodeJSONEscaping(t *testing.T) {
	m := New("t\"y\\pe\n")
	m.Set("k\t1", Str("line1\nline2\x00\x1f \"quoted\" \\slash\\ 控制 ☃"))
	b, err := EncodeJSON(m)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(b) {
		t.Fatalf("invalid JSON: %s", b)
	}
	back, err := DecodeJSON(b)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualMessages(t, m, back)
}

// TestAppendBinaryMatchesEncodeBinary: the append-style API and the pooled
// encoder produce identical bytes, and appending after a prefix leaves the
// prefix intact.
func TestAppendBinaryMatchesEncodeBinary(t *testing.T) {
	m := sampleMessage()
	enc, err := EncodeBinary(m)
	if err != nil {
		t.Fatal(err)
	}
	app, err := AppendBinary(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, app) {
		t.Fatalf("AppendBinary diverges from EncodeBinary:\n%x\n%x", app, enc)
	}
	prefixed, err := AppendBinary([]byte("prefix"), m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(prefixed, []byte("prefix")) || !bytes.Equal(prefixed[6:], enc) {
		t.Fatal("AppendBinary corrupted the destination prefix")
	}
}

// TestEncodeResultNotAliased: the returned slice must be the caller's own —
// a subsequent encode reusing the pooled scratch must not overwrite it.
func TestEncodeResultNotAliased(t *testing.T) {
	a := New("t").Set("k", Str("aaaaaaaaaaaaaaaa"))
	b := New("t").Set("k", Str("bbbbbbbbbbbbbbbb"))
	ea1, err := EncodeBinary(a)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]byte(nil), ea1...)
	if _, err := EncodeBinary(b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ea1, snapshot) {
		t.Fatal("pooled scratch aliased into a returned encoding")
	}
	ja, err := EncodeJSON(a)
	if err != nil {
		t.Fatal(err)
	}
	jsnap := append([]byte(nil), ja...)
	if _, err := EncodeJSON(b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jsnap) {
		t.Fatal("pooled scratch aliased into a returned JSON encoding")
	}
}

// TestEncodeConcurrent exercises the scratch pool under -race.
func TestEncodeConcurrent(t *testing.T) {
	m := sampleMessage()
	want, err := EncodeBinary(m)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := sampleMessage()
			for i := 0; i < 200; i++ {
				got, err := EncodeBinary(local)
				if err != nil || !bytes.Equal(got, want) {
					t.Errorf("concurrent encode diverged: %v", err)
					return
				}
				if _, err := EncodeJSON(local); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestEncodeAllocs: steady-state encoding allocates only the returned
// slice (plus encoding internals it cannot avoid), far below the
// map+reflection cost of the json.Marshal path.
func TestEncodeAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool reuse is randomised under -race; alloc counts are not meaningful")
	}
	m := sampleMessage()
	if _, err := EncodeBinary(m); err != nil { // warm the pool
		t.Fatal(err)
	}
	binAllocs := testing.AllocsPerRun(200, func() {
		if _, err := EncodeBinary(m); err != nil {
			t.Fatal(err)
		}
	})
	if binAllocs > 2 {
		t.Fatalf("EncodeBinary allocates %.1f/op, want <= 2", binAllocs)
	}
	jsonAllocs := testing.AllocsPerRun(200, func() {
		if _, err := EncodeJSON(m); err != nil {
			t.Fatal(err)
		}
	})
	if jsonAllocs > 2 {
		t.Fatalf("EncodeJSON allocates %.1f/op, want <= 2", jsonAllocs)
	}
}
