package msg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lciot/internal/ifc"
)

// genTagLabel draws from a small tag universe so subset relations occur.
func genTagLabel(r *rand.Rand) ifc.Label {
	universe := []ifc.Tag{"A", "B", "C", "D"}
	var tags []ifc.Tag
	for _, t := range universe {
		if r.Intn(2) == 0 {
			tags = append(tags, t)
		}
	}
	l, _ := ifc.NewLabel(tags...)
	return l
}

// TestPropertyQuenchExact: quenching removes exactly the attributes whose
// secrecy is not covered by the clearance, never mutates the original, and
// the survivors are byte-identical.
func TestPropertyQuenchExact(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nFields := r.Intn(6) + 1
		fields := make([]Field, 0, nFields)
		m := New("t")
		for i := 0; i < nFields; i++ {
			name := string(rune('a' + i))
			fields = append(fields, Field{
				Name:    name,
				Type:    TInt,
				Secrecy: genTagLabel(r),
			})
			m.Set(name, Int(int64(i)))
		}
		schema, err := NewSchema("t", ifc.EmptyLabel, fields...)
		if err != nil {
			return false
		}
		clearance := genTagLabel(r)

		before := m.Clone()
		out, quenched := schema.Quench(m, clearance)

		// Original untouched.
		if len(m.Attrs) != len(before.Attrs) {
			return false
		}
		quenchedSet := map[string]bool{}
		for _, q := range quenched {
			quenchedSet[q] = true
		}
		for _, fld := range fields {
			covered := fld.Secrecy.Subset(clearance)
			_, present := out.Get(fld.Name)
			if covered != present {
				return false // survivor set wrong
			}
			if quenchedSet[fld.Name] == covered {
				return false // quench list inconsistent with coverage
			}
			if present {
				ov, _ := out.Get(fld.Name)
				mv, _ := m.Get(fld.Name)
				if !ov.Equal(mv) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error("quench not exact:", err)
	}
}

// TestPropertyQuenchMonotone: a larger clearance never loses attributes a
// smaller clearance kept.
func TestPropertyQuenchMonotone(t *testing.T) {
	schema := MustSchema("t", ifc.EmptyLabel,
		Field{Name: "a", Type: TInt, Secrecy: ifc.MustLabel("A")},
		Field{Name: "b", Type: TInt, Secrecy: ifc.MustLabel("A", "B")},
		Field{Name: "c", Type: TInt},
	)
	m := New("t").Set("a", Int(1)).Set("b", Int(2)).Set("c", Int(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		small := genTagLabel(r)
		big := small.Union(genTagLabel(r))
		outSmall, _ := schema.Quench(m, small)
		outBig, _ := schema.Quench(m, big)
		for name := range outSmall.Attrs {
			if _, ok := outBig.Get(name); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error("quench not monotone:", err)
	}
}
