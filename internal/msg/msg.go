// Package msg implements the strongly-typed messages of the SBUS/CamFlow
// messaging substrate (Section 8.2.2): a message consists of named, typed
// attributes, and "certain message types, or attributes thereof, can be
// more sensitive than others" — so schemas attach message-layer IFC tags
// both to the whole type and to individual attributes. Enforcement may then
// quench individual attribute values rather than whole messages.
package msg

import (
	"errors"
	"fmt"
	"sort"

	"lciot/internal/ifc"
	"lciot/internal/telemetry"
)

// FieldType enumerates attribute types.
type FieldType int

// Field types.
const (
	TString FieldType = iota + 1
	TFloat
	TInt
	TBool
	TBytes
)

// String implements fmt.Stringer.
func (t FieldType) String() string {
	switch t {
	case TString:
		return "string"
	case TFloat:
		return "float"
	case TInt:
		return "int"
	case TBool:
		return "bool"
	case TBytes:
		return "bytes"
	default:
		return fmt.Sprintf("FieldType(%d)", int(t))
	}
}

// A Field describes one attribute of a message type.
type Field struct {
	Name string
	Type FieldType
	// Required fields must be present in every message of the type.
	Required bool
	// Secrecy holds message-layer secrecy tags specific to this attribute
	// (Fig. 10's tag C): a receiver lacking them gets the message with this
	// attribute quenched.
	Secrecy ifc.Label
}

// A Schema is a named message type: its attribute list plus message-layer
// tags for the type as a whole.
type Schema struct {
	Name string
	// Secrecy holds message-layer secrecy tags for the whole type.
	Secrecy ifc.Label
	Fields  []Field

	index map[string]int
}

// Errors reported by schema operations.
var (
	ErrUnknownField = errors.New("msg: unknown field")
	ErrWrongType    = errors.New("msg: wrong field type")
	ErrMissing      = errors.New("msg: missing required field")
	ErrNoSchema     = errors.New("msg: unknown schema")
)

// NewSchema builds a schema, validating field uniqueness.
func NewSchema(name string, secrecy ifc.Label, fields ...Field) (*Schema, error) {
	if name == "" {
		return nil, errors.New("msg: schema needs a name")
	}
	s := &Schema{Name: name, Secrecy: secrecy, Fields: fields, index: make(map[string]int, len(fields))}
	for i, f := range fields {
		if f.Name == "" {
			return nil, fmt.Errorf("msg: schema %q: field %d has no name", name, i)
		}
		if _, dup := s.index[f.Name]; dup {
			return nil, fmt.Errorf("msg: schema %q: duplicate field %q", name, f.Name)
		}
		s.index[f.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema for static declarations.
func MustSchema(name string, secrecy ifc.Label, fields ...Field) *Schema {
	s, err := NewSchema(name, secrecy, fields...)
	if err != nil {
		panic(err)
	}
	return s
}

// Field returns the named field definition.
func (s *Schema) Field(name string) (Field, bool) {
	i, ok := s.index[name]
	if !ok {
		return Field{}, false
	}
	return s.Fields[i], true
}

// A Value is one attribute value; exactly one member is meaningful,
// selected by Type.
type Value struct {
	Type  FieldType
	Str   string
	Float float64
	Int   int64
	Bool  bool
	Bytes []byte
}

// Equal compares two values.
func (v Value) Equal(o Value) bool {
	if v.Type != o.Type {
		return false
	}
	switch v.Type {
	case TString:
		return v.Str == o.Str
	case TFloat:
		return v.Float == o.Float
	case TInt:
		return v.Int == o.Int
	case TBool:
		return v.Bool == o.Bool
	case TBytes:
		return string(v.Bytes) == string(o.Bytes)
	default:
		return false
	}
}

// String implements fmt.Stringer.
func (v Value) String() string {
	switch v.Type {
	case TString:
		return fmt.Sprintf("%q", v.Str)
	case TFloat:
		return fmt.Sprintf("%g", v.Float)
	case TInt:
		return fmt.Sprintf("%d", v.Int)
	case TBool:
		return fmt.Sprintf("%t", v.Bool)
	case TBytes:
		return fmt.Sprintf("bytes[%d]", len(v.Bytes))
	default:
		return fmt.Sprintf("Value(type=%d)", int(v.Type))
	}
}

// Str builds a string value.
func Str(s string) Value { return Value{Type: TString, Str: s} }

// Float builds a float value.
func Float(f float64) Value { return Value{Type: TFloat, Float: f} }

// Int builds an int value.
func Int(i int64) Value { return Value{Type: TInt, Int: i} }

// Bool builds a bool value.
func Bool(b bool) Value { return Value{Type: TBool, Bool: b} }

// Bytes builds a bytes value (the slice is not copied; callers own it).
func Bytes(b []byte) Value { return Value{Type: TBytes, Bytes: b} }

// A Message is an instance of a schema.
type Message struct {
	Type string
	// Attrs maps field name to value.
	Attrs map[string]Value
	// DataID optionally identifies the datum for provenance tracking.
	DataID string
	// Trace is the flow-tracing context stamped at publish (zero when the
	// flow is unsampled). It is message metadata, not payload: the wire
	// codecs in this file do not carry it — the link protocol moves it in
	// its own frame fields (sbus/wire.go, protocol v4) so a v3 peer can
	// still decode the payload unchanged.
	Trace telemetry.TraceContext
	// Stage is the per-message stage clock armed at publish when stage
	// attribution is sampled (nil otherwise — the common case). Like
	// Trace it is metadata, not payload: clones share the same clock by
	// pointer so edge marks telescope across quench copies and relay
	// republishes, and the link protocol carries only the egress
	// timestamp (v5 trailer), not the clock itself.
	Stage *telemetry.StageClock
}

// New builds an empty message of the given type.
func New(schemaName string) *Message {
	return &Message{Type: schemaName, Attrs: make(map[string]Value)}
}

// Set assigns an attribute and returns the message for chaining.
func (m *Message) Set(field string, v Value) *Message {
	m.Attrs[field] = v
	return m
}

// Get returns an attribute value.
func (m *Message) Get(field string) (Value, bool) {
	v, ok := m.Attrs[field]
	return v, ok
}

// FieldNames returns the message's populated attribute names, sorted.
func (m *Message) FieldNames() []string {
	return sortedFieldNames(make([]string, 0, len(m.Attrs)), m)
}

// Clone returns a deep copy; quenching mutates copies, never originals.
func (m *Message) Clone() *Message {
	cp := &Message{Type: m.Type, DataID: m.DataID, Trace: m.Trace, Stage: m.Stage, Attrs: make(map[string]Value, len(m.Attrs))}
	for k, v := range m.Attrs {
		if v.Type == TBytes {
			b := make([]byte, len(v.Bytes))
			copy(b, v.Bytes)
			v.Bytes = b
		}
		cp.Attrs[k] = v
	}
	return cp
}

// Validate checks the message against its schema: all attributes known and
// correctly typed, all required attributes present.
func (s *Schema) Validate(m *Message) error {
	if m.Type != s.Name {
		return fmt.Errorf("%w: message type %q, schema %q", ErrNoSchema, m.Type, s.Name)
	}
	for name, v := range m.Attrs {
		f, ok := s.Field(name)
		if !ok {
			return fmt.Errorf("%w: %q in message of type %q", ErrUnknownField, name, m.Type)
		}
		if f.Type != v.Type {
			return fmt.Errorf("%w: field %q is %s, got %s", ErrWrongType, name, f.Type, v.Type)
		}
	}
	for _, f := range s.Fields {
		if !f.Required {
			continue
		}
		if _, ok := m.Attrs[f.Name]; !ok {
			return fmt.Errorf("%w: %q in message of type %q", ErrMissing, f.Name, m.Type)
		}
	}
	return nil
}

// Quench returns a copy of the message with every attribute removed whose
// message-layer secrecy tags are not covered by the receiver's clearance
// (Section 8.2.2: "messages/attribute values are not transferred if the
// tags of each party do not accord"). It reports which attributes were
// quenched. Required fields are quenched like any other: the receiver then
// fails validation, which is exactly the intent — it must not see the
// message at all.
func (s *Schema) Quench(m *Message, clearance ifc.Label) (*Message, []string) {
	var quenched []string
	out := m.Clone()
	for name := range out.Attrs {
		f, ok := s.Field(name)
		if !ok {
			continue // Validate catches this separately
		}
		if !f.Secrecy.Subset(clearance) {
			delete(out.Attrs, name)
			quenched = append(quenched, name)
		}
	}
	sort.Strings(quenched)
	return out, quenched
}

// A Registry holds schemas by name. The zero value is unusable; use
// NewRegistry. Registries are immutable after construction, so they are
// safe for concurrent use.
type Registry struct {
	schemas map[string]*Schema
}

// NewRegistry builds a registry over the given schemas.
func NewRegistry(schemas ...*Schema) (*Registry, error) {
	r := &Registry{schemas: make(map[string]*Schema, len(schemas))}
	for _, s := range schemas {
		if _, dup := r.schemas[s.Name]; dup {
			return nil, fmt.Errorf("msg: duplicate schema %q", s.Name)
		}
		r.schemas[s.Name] = s
	}
	return r, nil
}

// Schema returns a schema by name.
func (r *Registry) Schema(name string) (*Schema, error) {
	s, ok := r.schemas[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSchema, name)
	}
	return s, nil
}

// Validate looks the message's schema up and validates against it.
func (r *Registry) Validate(m *Message) error {
	s, err := r.Schema(m.Type)
	if err != nil {
		return err
	}
	return s.Validate(m)
}
