package msg

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func sampleMessage() *Message {
	m := New("vitals")
	m.DataID = "reading-42"
	m.Set("patient", Str("ann")).
		Set("heart-rate", Float(71.5)).
		Set("raw", Bytes([]byte{0, 1, 2, 255})).
		Set("ambulatory", Bool(true)).
		Set("count", Int(-12345))
	return m
}

func assertEqualMessages(t *testing.T, a, b *Message) {
	t.Helper()
	if a.Type != b.Type || a.DataID != b.DataID {
		t.Fatalf("header mismatch: %q/%q vs %q/%q", a.Type, a.DataID, b.Type, b.DataID)
	}
	if len(a.Attrs) != len(b.Attrs) {
		t.Fatalf("attr counts %d vs %d", len(a.Attrs), len(b.Attrs))
	}
	for k, v := range a.Attrs {
		if !b.Attrs[k].Equal(v) {
			t.Fatalf("attr %q: %v vs %v", k, v, b.Attrs[k])
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	m := sampleMessage()
	b, err := EncodeJSON(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJSON(b)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualMessages(t, m, back)
}

func TestBinaryRoundTrip(t *testing.T) {
	m := sampleMessage()
	b, err := EncodeBinary(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeBinary(b)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualMessages(t, m, back)
}

func TestBinaryDeterministic(t *testing.T) {
	a, err := EncodeBinary(sampleMessage())
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeBinary(sampleMessage())
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("binary encoding not canonical")
	}
}

func TestBinarySmallerThanJSON(t *testing.T) {
	m := sampleMessage()
	jb, err := EncodeJSON(m)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := EncodeBinary(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(bb) >= len(jb) {
		t.Fatalf("binary %d bytes, JSON %d bytes", len(bb), len(jb))
	}
}

func TestDecodeJSONErrors(t *testing.T) {
	if _, err := DecodeJSON([]byte("{nope")); !errors.Is(err, ErrCodec) {
		t.Fatalf("garbage = %v", err)
	}
	if _, err := DecodeJSON([]byte(`{"type":"t","attrs":{"a":{"t":"zz"}}}`)); !errors.Is(err, ErrCodec) {
		t.Fatalf("unknown type tag = %v", err)
	}
	if _, err := DecodeJSON([]byte(`{"type":"t","attrs":{"a":{"t":"d","d":"!!"}}}`)); !errors.Is(err, ErrCodec) {
		t.Fatalf("bad base64 = %v", err)
	}
}

func TestDecodeBinaryErrors(t *testing.T) {
	good, err := EncodeBinary(sampleMessage())
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation must be detected, never panic.
	for i := 0; i < len(good); i++ {
		if _, err := DecodeBinary(good[:i]); !errors.Is(err, ErrCodec) {
			t.Fatalf("truncation at %d = %v", i, err)
		}
	}
	// Trailing junk is rejected.
	if _, err := DecodeBinary(append(append([]byte{}, good...), 0xAA)); !errors.Is(err, ErrCodec) {
		t.Fatalf("trailing junk = %v", err)
	}
}

func TestEncodeRejectsInvalidValueType(t *testing.T) {
	m := New("t")
	m.Attrs["bad"] = Value{Type: FieldType(99)}
	if _, err := EncodeJSON(m); err == nil {
		t.Fatal("JSON encoded invalid type")
	}
	if _, err := EncodeBinary(m); err == nil {
		t.Fatal("binary encoded invalid type")
	}
}

func TestCodecPropertyRoundTrip(t *testing.T) {
	f := func(typ, dataID, sk string, s string, fl float64, i int64, bo bool, raw []byte) bool {
		if math.IsNaN(fl) {
			fl = 0 // NaN != NaN; canonicalise for the comparison
		}
		m := New(typ)
		m.DataID = dataID
		if sk != "" {
			m.Set(sk, Str(s))
		}
		m.Set("f", Float(fl)).Set("i", Int(i)).Set("b", Bool(bo)).Set("d", Bytes(raw))

		jb, err := EncodeJSON(m)
		if err != nil {
			return false
		}
		jm, err := DecodeJSON(jb)
		if err != nil {
			return false
		}
		bb, err := EncodeBinary(m)
		if err != nil {
			return false
		}
		bm, err := DecodeBinary(bb)
		if err != nil {
			return false
		}
		for k, v := range m.Attrs {
			if !jm.Attrs[k].Equal(v) || !bm.Attrs[k].Equal(v) {
				return false
			}
		}
		return jm.Type == typ && bm.Type == typ && jm.DataID == dataID && bm.DataID == dataID
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
