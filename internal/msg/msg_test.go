package msg

import (
	"errors"
	"reflect"
	"testing"

	"lciot/internal/ifc"
)

// personSchema is the paper's Section 8.2.2 example: "for a message type
// person, attribute name is likely more sensitive than country".
func personSchema() *Schema {
	return MustSchema("person", ifc.MustLabel("A", "B"),
		Field{Name: "name", Type: TString, Required: true, Secrecy: ifc.MustLabel("C")},
		Field{Name: "country", Type: TString, Required: true},
		Field{Name: "age", Type: TInt},
	)
}

func vitalsSchema() *Schema {
	return MustSchema("vitals", ifc.EmptyLabel,
		Field{Name: "patient", Type: TString, Required: true},
		Field{Name: "heart-rate", Type: TFloat, Required: true},
		Field{Name: "raw", Type: TBytes},
		Field{Name: "ambulatory", Type: TBool},
	)
}

func TestSchemaConstruction(t *testing.T) {
	if _, err := NewSchema("", ifc.EmptyLabel); err == nil {
		t.Fatal("anonymous schema accepted")
	}
	if _, err := NewSchema("s", ifc.EmptyLabel, Field{Name: "a", Type: TString}, Field{Name: "a", Type: TInt}); err == nil {
		t.Fatal("duplicate field accepted")
	}
	if _, err := NewSchema("s", ifc.EmptyLabel, Field{Type: TString}); err == nil {
		t.Fatal("unnamed field accepted")
	}
}

func TestValidate(t *testing.T) {
	s := personSchema()
	tests := []struct {
		name    string
		build   func() *Message
		wantErr error
	}{
		{
			"valid",
			func() *Message {
				return New("person").Set("name", Str("ann")).Set("country", Str("uk")).Set("age", Int(33))
			},
			nil,
		},
		{
			"optional-omitted",
			func() *Message {
				return New("person").Set("name", Str("ann")).Set("country", Str("uk"))
			},
			nil,
		},
		{
			"missing-required",
			func() *Message { return New("person").Set("name", Str("ann")) },
			ErrMissing,
		},
		{
			"unknown-field",
			func() *Message {
				return New("person").Set("name", Str("a")).Set("country", Str("uk")).Set("ssn", Str("x"))
			},
			ErrUnknownField,
		},
		{
			"wrong-type",
			func() *Message {
				return New("person").Set("name", Int(3)).Set("country", Str("uk"))
			},
			ErrWrongType,
		},
		{
			"wrong-schema",
			func() *Message { return New("vitals") },
			ErrNoSchema,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := s.Validate(tt.build())
			if tt.wantErr == nil {
				if err != nil {
					t.Fatalf("Validate: %v", err)
				}
				return
			}
			if !errors.Is(err, tt.wantErr) {
				t.Fatalf("Validate = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

// TestFig10AttributeQuenching is part of experiment E10: a receiver cleared
// for the type tags {A,B} but not the attribute tag C receives the message
// with the sensitive attribute removed.
func TestFig10AttributeQuenching(t *testing.T) {
	s := personSchema()
	m := New("person").Set("name", Str("ann")).Set("country", Str("uk")).Set("age", Int(33))

	// Fully cleared receiver sees everything.
	full, quenched := s.Quench(m, ifc.MustLabel("A", "B", "C"))
	if len(quenched) != 0 || len(full.Attrs) != 3 {
		t.Fatalf("full clearance quenched %v", quenched)
	}

	// Receiver lacking C loses the name attribute only.
	partial, quenched := s.Quench(m, ifc.MustLabel("A", "B"))
	if !reflect.DeepEqual(quenched, []string{"name"}) {
		t.Fatalf("quenched = %v, want [name]", quenched)
	}
	if _, ok := partial.Get("name"); ok {
		t.Fatal("sensitive attribute survived quenching")
	}
	if v, ok := partial.Get("country"); !ok || v.Str != "uk" {
		t.Fatal("insensitive attribute lost")
	}
	// The original message is untouched.
	if _, ok := m.Get("name"); !ok {
		t.Fatal("quench mutated the original")
	}
	// The quenched message now fails validation (name is required): the
	// receiver must not process it as a complete person record.
	if err := s.Validate(partial); !errors.Is(err, ErrMissing) {
		t.Fatalf("validate after quench = %v, want ErrMissing", err)
	}
}

func TestCloneIsolatesBytes(t *testing.T) {
	m := New("vitals").Set("raw", Bytes([]byte{1, 2, 3}))
	cp := m.Clone()
	raw, _ := cp.Get("raw")
	raw.Bytes[0] = 99
	orig, _ := m.Get("raw")
	if orig.Bytes[0] != 1 {
		t.Fatal("clone shares byte storage")
	}
}

func TestRegistry(t *testing.T) {
	r, err := NewRegistry(personSchema(), vitalsSchema())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Schema("person"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Schema("nope"); !errors.Is(err, ErrNoSchema) {
		t.Fatalf("unknown schema = %v", err)
	}
	m := New("vitals").Set("patient", Str("ann")).Set("heart-rate", Float(72))
	if err := r.Validate(m); err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(New("ghost")); !errors.Is(err, ErrNoSchema) {
		t.Fatalf("ghost validate = %v", err)
	}
	if _, err := NewRegistry(personSchema(), personSchema()); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

func TestValueStringAndEqual(t *testing.T) {
	vals := []Value{Str("x"), Float(1.5), Int(-3), Bool(true), Bytes([]byte{1})}
	for _, v := range vals {
		if v.String() == "" {
			t.Errorf("%v renders empty", v.Type)
		}
		if !v.Equal(v) {
			t.Errorf("%v not equal to itself", v)
		}
	}
	if Str("a").Equal(Int(1)) {
		t.Error("cross-type equality")
	}
	if Bytes([]byte{1}).Equal(Bytes([]byte{2})) {
		t.Error("bytes equality wrong")
	}
	if (Value{}).String() == "" {
		t.Error("zero value renders empty")
	}
}

func TestFieldTypeString(t *testing.T) {
	want := map[FieldType]string{
		TString: "string", TFloat: "float", TInt: "int", TBool: "bool", TBytes: "bytes",
		FieldType(9): "FieldType(9)",
	}
	for ft, s := range want {
		if ft.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(ft), ft.String(), s)
		}
	}
}

func TestFieldNamesSorted(t *testing.T) {
	m := New("t").Set("z", Int(1)).Set("a", Int(2)).Set("m", Int(3))
	want := []string{"a", "m", "z"}
	if got := m.FieldNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("FieldNames = %v", got)
	}
}
