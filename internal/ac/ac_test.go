package ac

import (
	"errors"
	"testing"

	"lciot/internal/ctxmodel"
	"lciot/internal/ifc"
)

// hospitalACL models the paper's running example: a parametrised nurse role
// whose access is conditioned on being on duty and in the patient's home.
func hospitalACL(t *testing.T) *ACL {
	t.Helper()
	var a ACL
	a.DefineRole(Role{
		Name:   "nurse",
		Params: []string{"ward"},
		Grants: []Permission{
			{Action: "read", Resource: "patients/$ward/*"},
			{Action: "subscribe", Resource: "vitals/$ward/**"},
		},
	})
	a.DefineRole(Role{
		Name:   "admin",
		Grants: []Permission{{Action: "*", Resource: "**"}},
	})
	onDuty := func(ctx ctxmodel.Snapshot) bool {
		v, ok := ctx.Get("on-duty")
		return ok && v.Bool
	}
	if err := a.Assign(Assignment{
		Principal: "alice", Role: "nurse",
		Args:      map[string]string{"ward": "a"},
		Condition: onDuty,
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.Assign(Assignment{Principal: "root", Role: "admin", Args: map[string]string{}}); err != nil {
		t.Fatal(err)
	}
	return &a
}

func onDutyCtx(on bool) ctxmodel.Snapshot {
	return ctxmodel.MakeSnapshot(map[string]ctxmodel.Value{"on-duty": ctxmodel.Bool(on)})
}

func TestParametrisedRoleAuthorisation(t *testing.T) {
	a := hospitalACL(t)
	ctx := onDutyCtx(true)

	tests := []struct {
		name      string
		principal ifc.PrincipalID
		action    string
		resource  string
		want      bool
	}{
		{"own-ward-read", "alice", "read", "patients/a/ann", true},
		{"other-ward-read", "alice", "read", "patients/b/bob", false},
		{"own-ward-wrong-action", "alice", "write", "patients/a/ann", false},
		{"deep-subscribe", "alice", "subscribe", "vitals/a/ann/heart-rate", true},
		{"deep-subscribe-other-ward", "alice", "subscribe", "vitals/b/zeb/heart-rate", false},
		{"admin-anything", "root", "delete", "anything/at/all", true},
		{"stranger", "mallory", "read", "patients/a/ann", false},
		{"segment-count-mismatch", "alice", "read", "patients/a", false},
		{"wildcard-not-prefix", "alice", "read", "patients/a/ann/extra", false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := a.Authorize(tt.principal, tt.action, tt.resource, ctx)
			if tt.want && err != nil {
				t.Fatalf("denied: %v", err)
			}
			if !tt.want && !errors.Is(err, ErrDenied) {
				t.Fatalf("allowed (or wrong error): %v", err)
			}
		})
	}
}

func TestConditionGatesRole(t *testing.T) {
	a := hospitalACL(t)
	// Off duty: the nurse role is inactive.
	if err := a.Authorize("alice", "read", "patients/a/ann", onDutyCtx(false)); !errors.Is(err, ErrDenied) {
		t.Fatalf("off-duty access = %v, want ErrDenied", err)
	}
	roles := a.Roles("alice", onDutyCtx(false))
	if len(roles) != 0 {
		t.Fatalf("off-duty roles = %v", roles)
	}
	roles = a.Roles("alice", onDutyCtx(true))
	if len(roles) != 1 || roles[0] != "nurse" {
		t.Fatalf("on-duty roles = %v", roles)
	}
}

func TestAssignmentValidation(t *testing.T) {
	var a ACL
	a.DefineRole(Role{Name: "r", Params: []string{"p"}})
	if err := a.Assign(Assignment{Principal: "x", Role: "ghost"}); !errors.Is(err, ErrUnknownRole) {
		t.Fatalf("unknown role = %v", err)
	}
	if err := a.Assign(Assignment{Principal: "x", Role: "r"}); !errors.Is(err, ErrBadRoleArgs) {
		t.Fatalf("missing args = %v", err)
	}
	if err := a.Assign(Assignment{Principal: "x", Role: "r", Args: map[string]string{"q": "1"}}); !errors.Is(err, ErrBadRoleArgs) {
		t.Fatalf("wrong arg name = %v", err)
	}
	if err := a.Assign(Assignment{Principal: "x", Role: "r", Args: map[string]string{"p": "1", "q": "2"}}); !errors.Is(err, ErrBadRoleArgs) {
		t.Fatalf("extra args = %v", err)
	}
}

func TestRevoke(t *testing.T) {
	a := hospitalACL(t)
	ctx := onDutyCtx(true)
	if err := a.Authorize("alice", "read", "patients/a/ann", ctx); err != nil {
		t.Fatal(err)
	}
	a.Revoke("alice", "nurse")
	if err := a.Authorize("alice", "read", "patients/a/ann", ctx); !errors.Is(err, ErrDenied) {
		t.Fatalf("post-revoke = %v", err)
	}
}

func TestZeroACLDeniesEverything(t *testing.T) {
	var a ACL
	if err := a.Authorize("anyone", "read", "anything", ctxmodel.MakeSnapshot(nil)); !errors.Is(err, ErrDenied) {
		t.Fatalf("zero ACL = %v", err)
	}
}

func TestMatchResourceTable(t *testing.T) {
	args := map[string]string{"ward": "a"}
	tests := []struct {
		pattern, resource string
		want              bool
	}{
		{"a/b", "a/b", true},
		{"a/b", "a/c", false},
		{"a/*", "a/anything", true},
		{"a/*", "a", false},
		{"a/**", "a/b/c/d", true},
		{"**", "x", true},
		{"patients/$ward/*", "patients/a/ann", true},
		{"patients/$ward/*", "patients/b/ann", false},
		{"$ward", "a", true},
		{"$missing", "x", false},
	}
	for _, tt := range tests {
		if got := matchResource(tt.pattern, tt.resource, args); got != tt.want {
			t.Errorf("matchResource(%q, %q) = %v, want %v", tt.pattern, tt.resource, got, tt.want)
		}
	}
}

func TestMultipleActivationsOfSameRole(t *testing.T) {
	var a ACL
	a.DefineRole(Role{
		Name:   "nurse",
		Params: []string{"ward"},
		Grants: []Permission{{Action: "read", Resource: "patients/$ward/*"}},
	})
	for _, ward := range []string{"a", "b"} {
		if err := a.Assign(Assignment{
			Principal: "alice", Role: "nurse", Args: map[string]string{"ward": ward},
		}); err != nil {
			t.Fatal(err)
		}
	}
	ctx := ctxmodel.MakeSnapshot(nil)
	for _, ward := range []string{"a", "b"} {
		if err := a.Authorize("alice", "read", "patients/"+ward+"/x", ctx); err != nil {
			t.Fatalf("ward %s: %v", ward, err)
		}
	}
	if err := a.Authorize("alice", "read", "patients/c/x", ctx); !errors.Is(err, ErrDenied) {
		t.Fatalf("ward c = %v", err)
	}
}
