// Package ac implements the conventional access-control layer the paper
// keeps alongside IFC (Section 4): principal-based authorisation at policy
// enforcement points, with OASIS-style parametrised roles [10] — a role
// like nurse(ward) can "capture details of an entity, its functionality and
// context" — and contextual conditions evaluated at check time. IFC then
// takes over beyond the enforcement point; this package only guards the
// point itself.
package ac

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"lciot/internal/ctxmodel"
	"lciot/internal/ifc"
)

// Errors reported by authorisation.
var (
	ErrDenied      = errors.New("ac: denied")
	ErrUnknownRole = errors.New("ac: unknown role")
	ErrBadRoleArgs = errors.New("ac: role argument mismatch")
)

// A Permission grants an action over a resource pattern. Patterns are
// '/'-separated; a segment may be a literal, "*" (any one segment), or
// "$param" (substituted from the role activation's arguments).
type Permission struct {
	Action   string
	Resource string
}

// A Role is a named, parameterised bundle of permissions.
type Role struct {
	Name string
	// Params names the role's parameters, e.g. ["ward"].
	Params []string
	// Grants are the permissions conferred, with $param placeholders.
	Grants []Permission
}

// A Condition guards a role activation with a context predicate, e.g.
// "only while on duty" or "only when at the patient's home" (Section 3,
// Concern 6).
type Condition func(ctxmodel.Snapshot) bool

// An Assignment activates a role for a principal with concrete arguments.
type Assignment struct {
	Principal ifc.PrincipalID
	Role      string
	Args      map[string]string
	Condition Condition
}

// An ACL is a set of roles and assignments. The zero value is ready to use
// (and denies everything).
type ACL struct {
	mu          sync.RWMutex
	roles       map[string]Role
	assignments map[ifc.PrincipalID][]Assignment
}

// DefineRole registers or replaces a role.
func (a *ACL) DefineRole(r Role) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.roles == nil {
		a.roles = make(map[string]Role)
	}
	a.roles[r.Name] = r
}

// Assign activates a role for a principal. Arguments must cover the role's
// parameters exactly.
func (a *ACL) Assign(as Assignment) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	role, ok := a.roles[as.Role]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownRole, as.Role)
	}
	if len(as.Args) != len(role.Params) {
		return fmt.Errorf("%w: role %q takes %d parameters, got %d",
			ErrBadRoleArgs, as.Role, len(role.Params), len(as.Args))
	}
	for _, p := range role.Params {
		if _, ok := as.Args[p]; !ok {
			return fmt.Errorf("%w: role %q missing argument %q", ErrBadRoleArgs, as.Role, p)
		}
	}
	if a.assignments == nil {
		a.assignments = make(map[ifc.PrincipalID][]Assignment)
	}
	a.assignments[as.Principal] = append(a.assignments[as.Principal], as)
	return nil
}

// Revoke removes every activation of the role for the principal.
func (a *ACL) Revoke(p ifc.PrincipalID, role string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	kept := a.assignments[p][:0]
	for _, as := range a.assignments[p] {
		if as.Role != role {
			kept = append(kept, as)
		}
	}
	a.assignments[p] = kept
}

// Authorize checks whether the principal may perform action on resource in
// the given context. It returns nil on success and an error wrapping
// ErrDenied otherwise.
func (a *ACL) Authorize(p ifc.PrincipalID, action, resource string, ctx ctxmodel.Snapshot) error {
	a.mu.RLock()
	assignments := a.assignments[p]
	a.mu.RUnlock()

	for _, as := range assignments {
		if as.Condition != nil && !as.Condition(ctx) {
			continue
		}
		a.mu.RLock()
		role, ok := a.roles[as.Role]
		a.mu.RUnlock()
		if !ok {
			continue
		}
		for _, g := range role.Grants {
			if g.Action != action && g.Action != "*" {
				continue
			}
			if matchResource(g.Resource, resource, as.Args) {
				return nil
			}
		}
	}
	return fmt.Errorf("%w: %q may not %q on %q", ErrDenied, p, action, resource)
}

// Roles returns the principal's currently-active role names (conditions
// evaluated against ctx), for audit and introspection.
func (a *ACL) Roles(p ifc.PrincipalID, ctx ctxmodel.Snapshot) []string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	var out []string
	for _, as := range a.assignments[p] {
		if as.Condition == nil || as.Condition(ctx) {
			out = append(out, as.Role)
		}
	}
	return out
}

// matchResource matches a pattern against a concrete resource, segment by
// segment, substituting $params and honouring "*" wildcards. A trailing
// "**" matches any remaining segments.
func matchResource(pattern, resource string, args map[string]string) bool {
	ps := strings.Split(pattern, "/")
	rs := strings.Split(resource, "/")
	for i, seg := range ps {
		if seg == "**" {
			return true
		}
		if i >= len(rs) {
			return false
		}
		switch {
		case seg == "*":
			continue
		case strings.HasPrefix(seg, "$"):
			if args[seg[1:]] != rs[i] {
				return false
			}
		case seg != rs[i]:
			return false
		}
	}
	return len(ps) == len(rs)
}
