package store

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"lciot/internal/audit"
	"lciot/internal/fault"
)

// TestCrashRecoverySIGKILL is the crash-recovery property test: a child
// process ingests audit records through the full Log → sink → WAL
// pipeline and reports its durable watermark after every Sync; the parent
// SIGKILLs it at an arbitrary point, reopens the store, and asserts the
// recovery contract — at most the uncommitted tail is lost, never a
// record that Sync acknowledged, and the recovered chain verifies end to
// end and continues into a fresh in-memory log.
func TestCrashRecoverySIGKILL(t *testing.T) {
	if os.Getenv("STORE_CRASH_CHILD") == "1" {
		crashChildMain()
		return
	}
	if testing.Short() {
		t.Skip("subprocess crash test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for iter := 0; iter < 3; iter++ {
		dir := t.TempDir()
		killAfter := time.Duration(50+rng.Intn(400)) * time.Millisecond
		acked := runCrashChild(t, dir, killAfter)

		s, err := OpenAudit(dir, Options{})
		if err != nil {
			t.Fatalf("iter %d: recovery failed: %v", iter, err)
		}
		recovered := s.NextSeq()
		if recovered < acked {
			t.Fatalf("iter %d: lost committed records: acked durable boundary %d, recovered only %d",
				iter, acked, recovered)
		}
		if bad, err := s.Verify(); err != nil || bad != -1 {
			t.Fatalf("iter %d: recovered chain broken at %d: %v", iter, bad, err)
		}
		// The chain must continue seamlessly across the crash boundary.
		l := audit.NewLog(nil)
		if err := s.AttachLog(l); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		l.Append(flowRec("post-crash", "sink"))
		if err := s.VerifyAgainst(l); err != nil {
			t.Fatalf("iter %d: boundary verify after restart: %v", iter, err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		t.Logf("iter %d: killed after %v, acked %d, recovered %d", iter, killAfter, acked, recovered)
	}
}

// TestDiskFullRecovery is the disk-full analogue of the SIGKILL test,
// driven by the store.wal.write failpoint instead of a signal: ENOSPC
// strikes mid-batch after a partial write, leaving a torn frame on disk.
// The contract: Sync waiters see the sticky degraded error wrapping
// ENOSPC, nothing past the durable boundary is claimed, and a restart
// truncates the torn tail and verifies clean, with the chain continuing
// across the boundary.
func TestDiskFullRecovery(t *testing.T) {
	defer fault.DisarmAll()
	dir := t.TempDir()

	s, err := OpenAudit(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l := audit.NewLog(nil)
	if err := s.AttachLog(l); err != nil {
		t.Fatal(err)
	}
	// A durable prefix the failure must not touch.
	for i := 0; i < 20; i++ {
		l.Append(flowRec("ingest", "store"))
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	durable := s.WAL().DurableSeq()

	// The disk "fills" mid-batch: the next commit lands a 20-byte prefix
	// of the batch — a torn frame — then fails with ENOSPC.
	fault.Arm("store.wal.write",
		fault.Always(fault.Action{Bytes: 20, Err: fault.Wrap(syscall.ENOSPC)}))
	for i := 0; i < 20; i++ {
		l.Append(flowRec("ingest", "store"))
	}
	err = s.Sync()
	if !errors.Is(err, ErrDegraded) || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Sync = %v, want ErrDegraded wrapping ENOSPC", err)
	}
	if got := s.WAL().DurableSeq(); got != durable {
		t.Fatalf("durable boundary moved across the failure: %d -> %d", durable, got)
	}
	// Ingest continues on the degraded store: records buffer in memory
	// instead of vanishing or wedging the appender.
	for i := 0; i < 5; i++ {
		l.Append(flowRec("ingest", "store"))
	}
	if h := s.Health(); !h.Degraded || h.Buffered == 0 {
		t.Fatalf("health = %+v, want degraded with buffered records", h)
	}
	_ = s.Close()
	fault.DisarmAll()

	// Restart: recovery must truncate the torn tail back to the durable
	// boundary and the chain must verify and continue.
	s2, err := OpenAudit(dir, Options{})
	if err != nil {
		t.Fatalf("recovery after disk-full: %v", err)
	}
	if got := s2.NextSeq(); got != durable {
		t.Fatalf("recovered to seq %d, want durable boundary %d", got, durable)
	}
	if bad, err := s2.Verify(); err != nil || bad != -1 {
		t.Fatalf("recovered chain broken at %d: %v", bad, err)
	}
	l2 := audit.NewLog(nil)
	if err := s2.AttachLog(l2); err != nil {
		t.Fatal(err)
	}
	l2.Append(flowRec("post-enospc", "sink"))
	if err := s2.VerifyAgainst(l2); err != nil {
		t.Fatalf("boundary verify after restart: %v", err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

// runCrashChild re-execs the test binary as an ingesting child, kills it
// with SIGKILL after the given delay, and returns the highest durable
// watermark the child acknowledged before dying.
func runCrashChild(t *testing.T, dir string, killAfter time.Duration) uint64 {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestCrashRecoverySIGKILL$")
	cmd.Env = append(os.Environ(), "STORE_CRASH_CHILD=1", "STORE_CRASH_DIR="+dir)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	var acked atomic.Uint64
	scanDone := make(chan struct{})
	go func() {
		defer close(scanDone)
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if n, ok := strings.CutPrefix(line, "acked "); ok {
				if v, err := strconv.ParseUint(n, 10, 64); err == nil {
					acked.Store(v)
				}
			}
		}
	}()

	time.Sleep(killAfter)
	_ = cmd.Process.Kill() // SIGKILL: no deferred cleanup, no final flush
	_ = cmd.Wait()
	<-scanDone
	return acked.Load()
}

// crashChildMain is the child side: open the store, attach a log, ingest
// as fast as possible on the async path, and report the durable boundary
// after every Sync. It never exits on its own (the parent kills it); the
// deadline is a backstop against an orphaned child.
func crashChildMain() {
	dir := os.Getenv("STORE_CRASH_DIR")
	s, err := OpenAudit(dir, Options{SegmentBytes: 1 << 20})
	if err != nil {
		fmt.Fprintln(os.Stderr, "crash child:", err)
		os.Exit(1)
	}
	l := audit.NewLog(nil)
	if err := s.AttachLog(l); err != nil {
		fmt.Fprintln(os.Stderr, "crash child:", err)
		os.Exit(1)
	}
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; time.Now().Before(deadline); i++ {
		l.AppendAsync(flowRec("ingest", "store"))
		if i%97 == 0 {
			l.Flush()
			if err := s.Sync(); err != nil {
				fmt.Fprintln(os.Stderr, "crash child:", err)
				os.Exit(1)
			}
			fmt.Printf("acked %d\n", s.WAL().DurableSeq())
		}
	}
	os.Exit(0)
}
