package store

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"lciot/internal/audit"
	"lciot/internal/telemetry"
)

// ErrChainBoundary reports a record whose hash chain does not continue the
// persisted chain — the memory/disk boundary was broken.
var ErrChainBoundary = errors.New("store: audit chain boundary mismatch")

// ErrDegraded reports that the audit store has entered degraded mode: a
// WAL I/O error (full disk, failed fsync) made further persistence
// impossible, and incoming chain records are being held in a bounded
// in-memory buffer instead of being written. The error is sticky for the
// life of the process and wraps the root cause, so
// errors.Is(err, ErrDegraded) and errors.Is(err, syscall.ENOSPC) both
// work. Recovery is by restart: the WAL's recovery truncates the torn
// tail and the chain resumes from the durable boundary.
var ErrDegraded = errors.New("store: audit store degraded")

// maxDegradedBuffer bounds the records a degraded store holds in memory.
// Beyond it records are shed (counted, never silent): bounded memory is
// the point of degrading gracefully instead of wedging group commit.
const maxDegradedBuffer = 4096

// An AuditStore is the disk tier of the tamper-evident audit log: a WAL of
// audit.Record values in their binary wire form, with the hash chain kept
// contiguous across the memory/disk boundary. Open recovers and verifies
// the persisted chain; AttachLog primes a fresh in-memory audit.Log with
// the recovered chain head, registers a sink persisting every subsequent
// record, and thereby makes the paper's compliance evidence survive the
// restarts that used to destroy it.
type AuditStore struct {
	w *WAL

	// mu guards the chain head. Appends are already serialised by
	// audit.Log's ordered sink delivery; the lock makes concurrent
	// read-side calls (NextSeq, VerifyAgainst, tooling) race-free.
	mu       sync.Mutex
	nextSeq  uint64
	lastHash [32]byte
	buf      []byte // encode scratch, reused across appends

	// Degradation state (sticky; see ErrDegraded). cause is the root WAL
	// error; buffered holds chain records accepted after degradation
	// (bounded by maxDegradedBuffer); shed counts records dropped beyond
	// the bound. All under mu.
	cause    error
	buffered []audit.Record
	shed     uint64
}

// OpenAudit opens (creating if necessary) a durable audit store in dir and
// recovers it: segments are replayed, a torn tail truncated, and every
// surviving record's hash chain verified end to end. The WAL sequence and
// the audit sequence advance in lockstep, so torn-tail truncation and
// chain verification compose.
func OpenAudit(dir string, opts Options) (*AuditStore, error) {
	w, err := Open(dir, opts)
	if err != nil {
		return nil, err
	}
	s := &AuditStore{w: w}
	s.nextSeq = w.NextSeq()
	if bad, err := s.verifyRange(w.FirstSeq(), 0, &s.lastHash); err != nil {
		w.Close()
		return nil, fmt.Errorf("recovered store seq %d: %w", bad, err)
	}
	// Degradation state, func-backed: the series read the fields the
	// store maintains anyway, so the append path pays nothing.
	reg := telemetry.Default()
	reg.GaugeFunc("store_audit_degraded", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.cause != nil {
			return 1
		}
		return 0
	}, "dir", dir)
	reg.GaugeFunc("store_audit_buffered", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.buffered))
	}, "dir", dir)
	reg.CounterFunc("store_audit_shed_total", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.shed)
	}, "dir", dir)
	return s, nil
}

// verifyRange walks records [from, to) checking linkage and content
// hashes; it leaves the hash of the last verified record in head (when
// non-nil) and returns the seq of the first bad record on failure.
func (s *AuditStore) verifyRange(from, to uint64, head *[32]byte) (uint64, error) {
	var prev [32]byte
	first := true
	bad := uint64(0)
	err := s.w.ReadSeq(from, to, func(e Entry) error {
		r, err := audit.DecodeRecordBinary(e.Payload)
		if err != nil {
			bad = e.Seq
			return err
		}
		if r.Seq != e.Seq {
			bad = e.Seq
			return fmt.Errorf("%w: frame seq %d carries record seq %d", audit.ErrChainBroken, e.Seq, r.Seq)
		}
		if !first && r.PrevHash != prev {
			bad = e.Seq
			return fmt.Errorf("%w: record %d links to wrong predecessor", audit.ErrChainBroken, r.Seq)
		}
		// Tombstones carry the original hash but no payload: linkage (above
		// and via the next record's PrevHash) is all that remains checkable
		// — provided they really are payload-free, else the flag would be a
		// forgery vector.
		if r.Redacted {
			if !audit.ValidTombstone(&r) {
				bad = e.Seq
				return fmt.Errorf("%w: record %d marked redacted but carries payload", audit.ErrChainBroken, r.Seq)
			}
		} else if audit.HashRecord(&r) != r.Hash {
			bad = e.Seq
			return fmt.Errorf("%w: record %d content hash mismatch", audit.ErrChainBroken, r.Seq)
		}
		prev = r.Hash
		first = false
		if head != nil {
			*head = r.Hash
		}
		return nil
	})
	return bad, err
}

// Verify re-checks the whole persisted chain, returning the sequence
// number of the first bad record, or -1 with a nil error when intact —
// the disk-tier analogue of audit.Log.Verify.
func (s *AuditStore) Verify() (int64, error) {
	if bad, err := s.verifyRange(s.w.FirstSeq(), 0, nil); err != nil {
		return int64(bad), err
	}
	return -1, nil
}

// Append persists one completed (hashed, chained) record. The record must
// continue the persisted chain: its Seq and PrevHash are checked against
// the store head before it is enqueued. Durability follows on the next
// group commit; call Sync to wait for it.
//
// A WAL I/O failure does not wedge the caller: the store degrades (see
// ErrDegraded) — the record is held in a bounded in-memory buffer (shed
// with a counter beyond the bound), the chain head still advances so
// subsequent records keep linking, and the sticky degraded error is
// returned (and from every later Append and Sync) so callers learn the
// evidence trail is no longer durable.
func (s *AuditStore) Append(r audit.Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r.Seq != s.nextSeq {
		return fmt.Errorf("%w: record seq %d, store expects %d", ErrChainBoundary, r.Seq, s.nextSeq)
	}
	if r.PrevHash != s.lastHash {
		// Covers the empty store too: the chain's first record carries a
		// zero PrevHash, which is exactly the zero-value head.
		return fmt.Errorf("%w: record %d does not link to persisted head", ErrChainBoundary, r.Seq)
	}
	if s.cause == nil {
		s.buf = audit.AppendRecordBinary(s.buf[:0], &r)
		if _, err := s.w.Append(r.Time, s.buf); err != nil {
			if errors.Is(err, ErrClosed) {
				return err // normal shutdown, not degradation
			}
			s.degradeLocked(err)
		}
	}
	s.nextSeq = r.Seq + 1
	s.lastHash = r.Hash
	if s.cause != nil {
		if len(s.buffered) < maxDegradedBuffer {
			s.buffered = append(s.buffered, r)
		} else {
			s.shed++
		}
		return s.degradedErrLocked()
	}
	return nil
}

// Sync blocks until every appended record is durable. On a degraded
// store it returns the sticky typed ErrDegraded wrapping the root cause,
// so waiters that believed their records durable find out they are not.
func (s *AuditStore) Sync() error {
	err := s.w.Sync()
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil && !errors.Is(err, ErrClosed) {
		s.degradeLocked(err)
	}
	if s.cause != nil {
		return s.degradedErrLocked()
	}
	return err
}

// degradeLocked flips the store into degraded mode (first cause wins);
// s.mu must be held.
func (s *AuditStore) degradeLocked(cause error) {
	if s.cause == nil {
		s.cause = cause
	}
}

// degradedErrLocked renders the sticky typed error; s.mu must be held
// and s.cause non-nil.
func (s *AuditStore) degradedErrLocked() error {
	return fmt.Errorf("%w: %w", ErrDegraded, s.cause)
}

// Health describes the store's degradation state for the operator-facing
// health ladder (core.Domain.Health aggregates it).
type Health struct {
	// Degraded reports that persistence has failed and the store is
	// buffering in memory; Cause is the root I/O error.
	Degraded bool
	Cause    error
	// Buffered counts chain records held only in memory; Shed counts
	// records dropped because the buffer was full.
	Buffered int
	Shed     uint64
}

// Health snapshots the store's degradation state.
func (s *AuditStore) Health() Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Health{
		Degraded: s.cause != nil,
		Cause:    s.cause,
		Buffered: len(s.buffered),
		Shed:     s.shed,
	}
}

// BufferedRecords returns a copy of the records a degraded store is
// holding in memory (tooling and tests; empty on a healthy store).
func (s *AuditStore) BufferedRecords() []audit.Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]audit.Record, len(s.buffered))
	copy(out, s.buffered)
	return out
}

// Redact overwrites the persisted record at seq with its chain-preserving
// tombstone (see audit.Record.Redact): payload zeroed, sequence and hashes
// intact, so Verify still passes end to end while the data is gone. It
// returns the number of records actually tombstoned (0 when the record was
// already redacted). note is retained in the tombstone as erasure
// evidence.
func (s *AuditStore) Redact(seq uint64, note string) (int, error) {
	return s.RedactMany([]uint64{seq}, note)
}

// RedactMany tombstones every listed record in one pass — each affected
// WAL segment is rewritten once, so batch erasures (a retention sweep, a
// whole-tag erasure request) stay proportional to segment count, not
// record count. Already-redacted records are skipped. Returns the number
// of records newly tombstoned.
func (s *AuditStore) RedactMany(seqs []uint64, note string) (int, error) {
	changed := 0
	err := s.w.RedactMany(seqs, func(_ uint64, old []byte) ([]byte, error) {
		r, err := audit.DecodeRecordBinary(old)
		if err != nil {
			return nil, err
		}
		if r.Redacted {
			return old, nil
		}
		t := r.Redact(note)
		changed++
		return audit.AppendRecordBinary(nil, &t), nil
	})
	return changed, err
}

// Pin protects the segment holding seq from retention until the returned
// release runs — the guard a pending (scheduled but not yet executed)
// tombstone takes so MaxSegments pruning cannot race it.
func (s *AuditStore) Pin(seq uint64) (release func()) { return s.w.Pin(seq) }

// AttachLog wires the store under an in-memory audit.Log: the log is
// primed with the recovered chain head (so its first new record links to
// the last persisted one) and every record it commits is appended here via
// a sink. The log must be freshly created; attach before ingest begins.
func (s *AuditStore) AttachLog(l *audit.Log) error {
	if err := l.Restore(s.NextSeq(), s.HeadHash()); err != nil {
		return err
	}
	l.AddSink(func(r audit.Record) {
		// Sinks run serialised in chain order; an I/O failure surfaces on
		// the next Sync/Offload rather than on the enforcement hot path.
		_ = s.Append(r)
	})
	return nil
}

// VerifyAgainst checks the chain across the memory/disk boundary. The log
// normally runs ahead of (or level with) the persisted head, with the
// overlap region identical on both tiers; the check anchors on the record
// straddling the boundary: the log's record at the store's head sequence
// must link back to the persisted head hash.
func (s *AuditStore) VerifyAgainst(l *audit.Log) error {
	logNext, logHead := l.Checkpoint() // flushes the log, draining sinks into the store
	if err := s.Sync(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.nextSeq == 0 {
		return nil // nothing persisted yet; any log state is consistent
	}
	switch {
	case logNext < s.nextSeq:
		return fmt.Errorf("%w: store head at seq %d but log has only committed up to %d",
			ErrChainBoundary, s.nextSeq, logNext)
	case logNext == s.nextSeq:
		if logHead != s.lastHash {
			return fmt.Errorf("%w: log head diverges from persisted head at seq %d",
				ErrChainBoundary, s.nextSeq)
		}
		return nil
	default:
		boundary, err := l.Get(s.nextSeq)
		if err != nil {
			return fmt.Errorf("%w: boundary record %d unavailable in memory: %v",
				ErrChainBoundary, s.nextSeq, err)
		}
		if boundary.PrevHash != s.lastHash {
			return fmt.Errorf("%w: record %d does not link to persisted head",
				ErrChainBoundary, s.nextSeq)
		}
		return nil
	}
}

// Offload makes the memory→disk tiering explicit: it waits until every
// record the log has committed is durable here, then prunes the log's
// in-memory records — audit.Log.Prune's "discarded segments for offload"
// finally have somewhere to go. It returns the number of records dropped
// from memory.
func (s *AuditStore) Offload(l *audit.Log) (int, error) {
	nextSeq, _ := l.Checkpoint()
	if err := s.Sync(); err != nil {
		return 0, err
	}
	durable := s.w.DurableSeq()
	upto := nextSeq
	if durable < upto {
		upto = durable
	}
	return len(l.Prune(upto)), nil
}

// Records materialises records [from, to) (to == 0 means the end). Large
// stores should prefer the streaming Read.
func (s *AuditStore) Records(from, to uint64) ([]audit.Record, error) {
	var out []audit.Record
	err := s.Read(from, to, func(r audit.Record) error {
		out = append(out, r)
		return nil
	})
	return out, err
}

// Read streams records [from, to) in sequence order.
func (s *AuditStore) Read(from, to uint64, fn func(audit.Record) error) error {
	return s.w.ReadSeq(from, to, func(e Entry) error {
		r, err := audit.DecodeRecordBinary(e.Payload)
		if err != nil {
			return err
		}
		return fn(r)
	})
}

// ReadTime streams records with from <= Time < to in sequence order,
// using the per-segment time stamps to skip irrelevant segments.
func (s *AuditStore) ReadTime(from, to time.Time, fn func(audit.Record) error) error {
	return s.w.ReadTime(from, to, func(e Entry) error {
		r, err := audit.DecodeRecordBinary(e.Payload)
		if err != nil {
			return err
		}
		return fn(r)
	})
}

// NextSeq returns the sequence number the next appended record must carry.
func (s *AuditStore) NextSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextSeq
}

// HeadHash returns the hash of the last persisted record.
func (s *AuditStore) HeadHash() [32]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastHash
}

// FirstSeq returns the oldest persisted sequence number.
func (s *AuditStore) FirstSeq() uint64 { return s.w.FirstSeq() }

// Len returns the number of committed records on disk.
func (s *AuditStore) Len() int { return int(s.w.DurableSeq() - s.w.FirstSeq()) }

// WAL exposes the underlying log (segment counts, pruning, direct reads).
func (s *AuditStore) WAL() *WAL { return s.w }

// Close syncs and closes the store.
func (s *AuditStore) Close() error { return s.w.Close() }
