package store

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"lciot/internal/audit"
	"lciot/internal/ifc"
)

// rewriteRecordNote rewrites the record with the given seq in place,
// changing its Note and refreshing the frame CRC — a structurally valid
// tamper only the hash chain can detect.
func rewriteRecordNote(dir string, seq uint64, note string) (bool, error) {
	files, err := walFiles(dir)
	if err != nil {
		return false, err
	}
	for _, name := range files {
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return false, err
		}
		if _, err := parseSegHeader(data); err != nil {
			return false, err
		}
		out := append([]byte(nil), data[:segHeaderLen]...)
		off := segHeaderLen
		found := false
		for off < len(data) {
			fr, err := parseFrame(data[off:])
			if err != nil {
				return false, err
			}
			if fr.seq == seq {
				r, err := audit.DecodeRecordBinary(fr.payload)
				if err != nil {
					return false, err
				}
				r.Note = note
				out = appendFrame(out, fr.seq, fr.unixNano, audit.AppendRecordBinary(nil, &r))
				found = true
			} else {
				out = append(out, data[off:off+fr.size]...)
			}
			off += fr.size
		}
		if found {
			return true, os.WriteFile(path, out, 0o644)
		}
	}
	return false, nil
}

func testClock() func() time.Time {
	t := time.Unix(1700000000, 0)
	return func() time.Time {
		t = t.Add(time.Millisecond)
		return t
	}
}

func flowRec(src, dst string) audit.Record {
	return audit.Record{
		Kind: audit.FlowAllowed, Layer: audit.LayerMessaging,
		Src: ifc.EntityID(src), Dst: ifc.EntityID(dst),
		SrcCtx: ifc.MustContext([]ifc.Tag{"medical", "ann"}, nil),
		DstCtx: ifc.MustContext([]ifc.Tag{"medical", "ann"}, []ifc.Tag{"hosp"}),
		DataID: src + "->" + dst, Agent: "hospital", Note: "ok",
	}
}

func TestRecordBinaryRoundTrip(t *testing.T) {
	l := audit.NewLog(testClock())
	want := l.Append(flowRec("a", "b"))

	buf := audit.AppendRecordBinary(nil, &want)
	got, err := audit.DecodeRecordBinary(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != want.Seq || got.Kind != want.Kind || got.Layer != want.Layer ||
		got.Src != want.Src || got.Dst != want.Dst || got.DataID != want.DataID ||
		got.Agent != want.Agent || got.Note != want.Note ||
		!got.Time.Equal(want.Time) ||
		!got.SrcCtx.Equal(want.SrcCtx) || !got.DstCtx.Equal(want.DstCtx) {
		t.Fatalf("round trip lost content:\n got %+v\nwant %+v", got, want)
	}
	if got.Hash != want.Hash || got.PrevHash != want.PrevHash {
		t.Fatal("hashes lost in round trip")
	}
	if audit.HashRecord(&got) != got.Hash {
		t.Fatal("decoded record does not re-hash to its stored hash")
	}
	// Truncations never panic and always error.
	for i := 0; i < len(buf); i++ {
		if _, err := audit.DecodeRecordBinary(buf[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
}

func TestAuditStorePersistsAndRecoversChain(t *testing.T) {
	dir := t.TempDir()
	clock := testClock()

	s, err := OpenAudit(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l := audit.NewLog(clock)
	if err := s.AttachLog(l); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		l.AppendAsync(flowRec("sensor", "analyser"))
	}
	headSeq, headHash := l.Checkpoint()
	if err := s.VerifyAgainst(l); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": reopen and verify the recovered chain matches the
	// pre-crash in-memory head exactly.
	s2, err := OpenAudit(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.NextSeq() != headSeq {
		t.Fatalf("recovered NextSeq %d, want %d", s2.NextSeq(), headSeq)
	}
	if s2.HeadHash() != headHash {
		t.Fatal("recovered head hash diverges from pre-restart log head")
	}
	if bad, err := s2.Verify(); err != nil || bad != -1 {
		t.Fatalf("Verify = %d, %v", bad, err)
	}

	// A fresh log continues the chain across the boundary.
	l2 := audit.NewLog(clock)
	if err := s2.AttachLog(l2); err != nil {
		t.Fatal(err)
	}
	l2.Append(flowRec("analyser", "archive"))
	if err := s2.VerifyAgainst(l2); err != nil {
		t.Fatal(err)
	}
	// And the persisted segment chains into the retained records.
	disk, err := s2.Records(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	retained := l2.Select(nil)
	if err := audit.VerifySegment(disk[:25], &retained[0]); err != nil {
		t.Fatalf("cross-boundary segment verify: %v", err)
	}
}

func TestAuditStoreOffload(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenAudit(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	l := audit.NewLog(testClock())
	if err := s.AttachLog(l); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		l.Append(flowRec("a", "b"))
	}
	dropped, err := s.Offload(l)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 10 {
		t.Fatalf("offloaded %d records, want 10", dropped)
	}
	if l.Len() != 0 {
		t.Fatalf("log retains %d records after offload", l.Len())
	}
	// The log keeps accepting records and the boundary still verifies:
	// memory is a cache, disk is the archive.
	l.Append(flowRec("b", "c"))
	if err := s.VerifyAgainst(l); err != nil {
		t.Fatal(err)
	}
	if recs, err := s.Records(0, 0); err != nil || len(recs) != 11 {
		t.Fatalf("disk holds %d records (%v), want 11", len(recs), err)
	}
	if bad, err := s.Verify(); err != nil || bad != -1 {
		t.Fatalf("Verify = %d, %v", bad, err)
	}
}

func TestAuditStoreRejectsChainBreaks(t *testing.T) {
	s, err := OpenAudit(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	l := audit.NewLog(testClock())
	r0 := l.Append(flowRec("a", "b"))
	if err := s.Append(r0); err != nil {
		t.Fatal(err)
	}
	// Wrong seq.
	bad := l.Append(flowRec("b", "c"))
	bad.Seq = 7
	if err := s.Append(bad); err == nil {
		t.Fatal("wrong-seq record accepted")
	}
	// Wrong linkage.
	bad = l.Append(flowRec("c", "d"))
	bad.Seq = s.NextSeq()
	bad.PrevHash = [32]byte{1}
	if err := s.Append(bad); err == nil {
		t.Fatal("wrong-linkage record accepted")
	}
}

func TestAuditStoreRecoveryDetectsTamper(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenAudit(dir, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	l := audit.NewLog(testClock())
	if err := s.AttachLog(l); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		l.Append(flowRec("a", "b"))
	}
	l.Flush()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Tamper with a record *payload* while refreshing its CRC, so the WAL
	// layer sees a structurally valid frame and only the hash chain can
	// catch the edit.
	tampered, err := rewriteRecordNote(dir, 5, "doctored")
	if err != nil {
		t.Fatal(err)
	}
	if !tampered {
		t.Fatal("tamper helper found nothing to rewrite")
	}
	if _, err := OpenAudit(dir, Options{SegmentBytes: 512}); err == nil {
		t.Fatal("tampered store opened with intact chain")
	}
}
