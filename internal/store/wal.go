package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"lciot/internal/fault"
	"lciot/internal/telemetry"
)

// Failpoints on the WAL's risky I/O seams (internal/fault; free when
// disarmed). They let tests and chaos drills provoke exactly the disk
// failures the recovery and degradation machinery claims to survive:
// ENOSPC and torn (partial) writes on commit, fsync errors, and rotation
// failures.
var (
	fpWalWrite  = fault.New("store.wal.write")
	fpWalFsync  = fault.New("store.wal.fsync")
	fpWalRotate = fault.New("store.wal.rotate")
)

// Errors reported by the WAL.
var (
	ErrClosed = errors.New("store: wal closed")
	// ErrNotRetained reports a redaction target outside the retained,
	// committed sequence range.
	ErrNotRetained = errors.New("store: seq not retained")
)

// Options configures a WAL. The zero value is ready for production use.
type Options struct {
	// SegmentBytes is the rotation threshold: once the active segment
	// exceeds it, the next batch opens a new segment. 0 means 64 MiB.
	SegmentBytes int64
	// MaxSegments, when > 0, bounds retention: after a rotation the oldest
	// sealed segments are deleted until at most MaxSegments files remain.
	// Audit stores leave this 0 (history is the point); bounded journals
	// (gateway store-and-forward) set it.
	MaxSegments int
	// NoSync skips fsync on commit — bulk loads and tests only. Committed
	// records may be lost on crash; Sync still waits for the write.
	NoSync bool
}

// An Entry is one record read back from the log. Payload aliases an
// internal read buffer and is only valid for the duration of the callback
// it is handed to.
type Entry struct {
	Seq     uint64
	Time    time.Time
	Payload []byte
}

// segment is the in-memory metadata for one segment file.
type segment struct {
	firstSeq  uint64
	count     uint64
	firstNano int64
	lastNano  int64
	path      string
	size      int64
}

func (s *segment) endSeq() uint64 { return s.firstSeq + s.count }

// A WAL is a segmented, CRC-framed, append-only log with batched group
// commit. Append assigns a sequence number, enqueues the framed record and
// returns; a committer goroutine (started on demand, exiting when idle)
// writes each accumulated batch with a single fsync. Sync waits on the
// enqueued/committed watermark, so it is bounded even under sustained
// ingest — the same design as audit.Log's AppendAsync/Flush pair, extended
// with durability.
type WAL struct {
	dir  string
	opts Options

	// mu guards segment metadata and the active file. Only the committer
	// writes; readers snapshot metadata under mu and open files read-only.
	mu     sync.Mutex
	segs   []*segment
	active *os.File
	// pins refcounts sequence numbers that retention must not drop:
	// a pending tombstone (a scheduled redaction that has not executed
	// yet) pins its target so MaxSegments rotation and Prune keep the
	// segment holding it until the pin is released. pinMin caches the
	// smallest pinned seq (the only one front-only removal cares about);
	// pinMinStale marks it for lazy recomputation after a release, so
	// rotation checks stay O(1) however many data are pinned.
	pins        map[uint64]int
	pinMin      uint64
	pinMinStale bool

	// pendMu guards the pending batch and the commit watermark.
	pendMu   sync.Mutex
	pendCond *sync.Cond
	pending  []byte // encoded frames awaiting commit
	pendN    int    // records in pending
	pendLo   int64  // min/max unixNano in pending
	pendHi   int64
	nextSeq  uint64 // next sequence number to assign
	// enqueued/completed count records over the WAL's lifetime; Sync waits
	// for completed to reach enqueued-as-of-the-call.
	enqueued  uint64
	completed uint64
	// durableSeq is the boundary of durability: every record with
	// Seq < durableSeq has been written (and, unless NoSync, fsynced).
	durableSeq uint64
	draining   bool
	err        error // sticky I/O error
	closed     bool

	// appendHist/fsyncHist time the WAL's two latencies operators watch:
	// the enqueue cost a caller pays and the fsync cost group commit pays.
	// Both are zero-cost while telemetry is disabled.
	appendHist *telemetry.Histogram
	fsyncHist  *telemetry.Histogram
}

// maxPendingBytes bounds the in-memory batch; appenders beyond it block
// until the committer catches up (backpressure rather than unbounded
// memory).
const maxPendingBytes = 8 << 20

// Open opens (creating if necessary) a WAL in dir, replaying existing
// segments: every frame is CRC-checked, sequence continuity is enforced,
// and a torn tail — the expected state after a crash mid-write — is
// truncated from the final segment. Corruption anywhere else is reported
// as ErrCorrupt, never repaired silently.
func Open(dir string, opts Options) (*WAL, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 64 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	w := &WAL{dir: dir, opts: opts}
	w.pendCond = sync.NewCond(&w.pendMu)
	if err := w.recover(); err != nil {
		return nil, err
	}
	reg := telemetry.Default()
	w.appendHist = reg.Histogram("store_wal_append_ns", "dir", dir)
	w.fsyncHist = reg.Histogram("store_wal_fsync_ns", "dir", dir)
	reg.GaugeFunc("store_wal_segments", func() float64 { return float64(w.Segments()) },
		"dir", dir)
	return w, nil
}

// recover scans the directory, validates every segment and prepares the
// active one for appending.
func (w *WAL) recover() error {
	names, err := filepath.Glob(filepath.Join(w.dir, "wal-*.seg"))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	sort.Strings(names)

	var expected uint64
	for i, path := range names {
		last := i == len(names)-1
		seg, next, err := w.recoverSegment(path, i == 0, expected, last)
		if err != nil {
			return err
		}
		expected = next
		w.segs = append(w.segs, seg)
	}

	if len(w.segs) == 0 {
		seg, f, err := w.createSegment(0)
		if err != nil {
			return err
		}
		w.segs = []*segment{seg}
		w.active = f
		w.nextSeq, w.durableSeq = 0, 0
		return nil
	}

	tail := w.segs[len(w.segs)-1]
	f, err := os.OpenFile(tail.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.Seek(tail.size, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	w.active = f
	w.nextSeq, w.durableSeq = expected, expected
	return nil
}

// recoverSegment validates one segment file. first marks the oldest
// segment (whose header firstSeq is trusted — earlier segments may have
// been pruned); last marks the newest, the only one allowed a torn tail.
// It returns the segment metadata and the sequence expected next.
func (w *WAL) recoverSegment(path string, first bool, expected uint64, last bool) (*segment, uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("store: %w", err)
	}
	firstSeq, err := parseSegHeader(data)
	if err != nil {
		if last {
			// A crash between file creation and the first committed header
			// write leaves a short or garbled header; rebuild the segment.
			if werr := w.rewriteHeader(path, expected); werr != nil {
				return nil, 0, werr
			}
			return &segment{firstSeq: expected, path: path, size: segHeaderLen}, expected, nil
		}
		return nil, 0, fmt.Errorf("%s: %w", path, err)
	}
	if !first && firstSeq != expected {
		return nil, 0, fmt.Errorf("%w: %s starts at seq %d, want %d", ErrCorrupt, path, firstSeq, expected)
	}
	seg := &segment{firstSeq: firstSeq, path: path, size: segHeaderLen}
	seq := firstSeq
	off := segHeaderLen
	for off < len(data) {
		fr, err := parseFrame(data[off:])
		if err != nil {
			if !last {
				return nil, 0, fmt.Errorf("%w: %s: bad frame at offset %d", ErrCorrupt, path, off)
			}
			// Torn tail: drop everything from the first bad frame on.
			if terr := w.truncateTo(path, int64(off)); terr != nil {
				return nil, 0, terr
			}
			break
		}
		if fr.seq != seq {
			return nil, 0, fmt.Errorf("%w: %s: frame seq %d, want %d", ErrCorrupt, path, fr.seq, seq)
		}
		if seg.count == 0 {
			seg.firstNano = fr.unixNano
		}
		seg.lastNano = fr.unixNano
		seg.count++
		seq++
		off += fr.size
		seg.size = int64(off)
	}
	return seg, seq, nil
}

// rewriteHeader rebuilds path as an empty segment starting at firstSeq.
func (w *WAL) rewriteHeader(path string, firstSeq uint64) error {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	if _, err := f.Write(appendSegHeader(nil, firstSeq)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return w.syncFile(f)
}

// truncateTo cuts path at off and fsyncs the repair.
func (w *WAL) truncateTo(path string, off int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	if err := f.Truncate(off); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return w.syncFile(f)
}

// createSegment creates and syncs a new segment file starting at firstSeq.
func (w *WAL) createSegment(firstSeq uint64) (*segment, *os.File, error) {
	path := filepath.Join(w.dir, segName(firstSeq))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	if _, err := f.Write(appendSegHeader(nil, firstSeq)); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	if err := w.syncFile(f); err != nil {
		f.Close()
		return nil, nil, err
	}
	if err := w.syncDir(); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &segment{firstSeq: firstSeq, path: path, size: segHeaderLen}, f, nil
}

func (w *WAL) syncFile(f *os.File) error {
	if act := fpWalFsync.Check(); act != nil {
		act.Wait()
		if act.Err != nil {
			return fmt.Errorf("store: fsync: %w", act.Err)
		}
	}
	if w.opts.NoSync {
		return nil
	}
	start := w.fsyncHist.Start()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	w.fsyncHist.ObserveSince(start)
	return nil
}

// syncDir persists directory entries (segment creation and deletion).
func (w *WAL) syncDir() error {
	if w.opts.NoSync {
		return nil
	}
	d, err := os.Open(w.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Append assigns the next sequence number to the payload, enqueues the
// framed record for group commit and returns immediately. The record is
// durable once Sync returns (or once DurableSeq passes its seq). Append
// never touches the disk itself, so callers on enforcement hot paths do
// not block on I/O (beyond bounded backpressure when the committer falls
// behind).
func (w *WAL) Append(t time.Time, payload []byte) (uint64, error) {
	hstart := w.appendHist.Start()
	if t.IsZero() {
		t = time.Now()
	}
	nano := t.UnixNano()
	w.pendMu.Lock()
	for len(w.pending) >= maxPendingBytes && w.err == nil && !w.closed {
		w.pendCond.Wait()
	}
	if w.err != nil || w.closed {
		err := w.err
		w.pendMu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return 0, err
	}
	seq := w.nextSeq
	w.nextSeq++
	if w.pendN == 0 {
		w.pendLo, w.pendHi = nano, nano
	} else {
		if nano < w.pendLo {
			w.pendLo = nano
		}
		if nano > w.pendHi {
			w.pendHi = nano
		}
	}
	w.pending = appendFrame(w.pending, seq, nano, payload)
	w.pendN++
	w.enqueued++
	start := !w.draining
	w.draining = true
	w.pendMu.Unlock()
	if start {
		go w.drain()
	}
	w.appendHist.ObserveSince(hstart)
	return seq, nil
}

// Sync blocks until every record enqueued before the call is committed —
// written and (unless NoSync) fsynced — and returns the first I/O error
// the committer hit, if any. Records enqueued after the call are not
// waited for, so Sync is bounded under sustained ingest.
func (w *WAL) Sync() error {
	w.pendMu.Lock()
	defer w.pendMu.Unlock()
	target := w.enqueued
	for w.completed < target && w.err == nil {
		w.pendCond.Wait()
	}
	return w.err
}

// drain is the committer: it repeatedly swaps out the pending batch and
// commits it with one write and one fsync, then exits once the batch
// stays empty.
func (w *WAL) drain() {
	for {
		w.pendMu.Lock()
		batch, n := w.pending, w.pendN
		lo, hi := w.pendLo, w.pendHi
		batchEnd := w.nextSeq
		sticky := w.err
		w.pending, w.pendN = nil, 0
		if n == 0 {
			w.draining = false
			w.pendCond.Broadcast()
			w.pendMu.Unlock()
			return
		}
		w.pendCond.Broadcast() // release writers blocked on backpressure
		w.pendMu.Unlock()

		// After a commit error the file tail is undefined (a write may
		// have landed partially); committing further batches on top would
		// advance the durable boundary past records recovery will discard.
		// Drop the batch and let the sticky error surface via Sync.
		err := sticky
		if err == nil {
			err = w.commitBatch(batch, uint64(n), batchEnd, lo, hi)
		}

		w.pendMu.Lock()
		if err != nil && w.err == nil {
			w.err = err
		}
		w.completed += uint64(n)
		if err == nil {
			w.durableSeq = batchEnd
		}
		w.pendCond.Broadcast()
		w.pendMu.Unlock()
	}
}

// commitBatch writes one encoded batch and fsyncs once per touched
// segment — in steady state exactly one fsync for the whole batch, the
// group commit that amortises durability across every record that arrived
// while the previous fsync was in flight. Batches larger than the
// remaining segment room are split at frame boundaries across a rotation.
func (w *WAL) commitBatch(batch []byte, n, batchEnd uint64, lo, hi int64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	seq := batchEnd - n // first sequence number in the batch
	off := 0
	for off < len(batch) {
		seg := w.segs[len(w.segs)-1]
		// Take the largest frame-aligned run that fits the segment. An
		// empty segment always accepts at least one frame, so oversized
		// records still commit.
		start := off
		var count uint64
		for off < len(batch) {
			size := frameOverhead + int(binary.BigEndian.Uint32(batch[off:]))
			if (count > 0 || seg.count > 0) && seg.size+int64(off-start+size) > w.opts.SegmentBytes {
				break
			}
			off += size
			count++
		}
		if count == 0 {
			if err := w.rotateLocked(seq); err != nil {
				return err
			}
			continue
		}
		if _, err := w.writeActive(batch[start:off]); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if err := w.syncFile(w.active); err != nil {
			return err
		}
		// Batch-wide time bounds are applied to each touched segment:
		// conservative (a segment may claim a slightly wider range than it
		// holds), which only ever costs ReadTime an extra scan.
		if seg.count == 0 {
			seg.firstNano = lo
		} else if lo < seg.firstNano {
			seg.firstNano = lo
		}
		if hi > seg.lastNano {
			seg.lastNano = hi
		}
		seg.count += count
		seg.size += int64(off - start)
		seq += count
	}
	return nil
}

// writeActive writes b to the active segment file, honouring the
// store.wal.write failpoint: an armed partial-write action lands only the
// injected byte prefix before failing — exactly the torn tail a real
// crash mid-write leaves, which recovery must truncate.
func (w *WAL) writeActive(b []byte) (int, error) {
	if act := fpWalWrite.Check(); act != nil {
		act.Wait()
		n := 0
		if act.Bytes > 0 {
			short := b
			if act.Bytes < len(short) {
				short = short[:act.Bytes]
			}
			n, _ = w.active.Write(short)
		}
		err := act.Err
		if err == nil {
			err = fault.ErrInjected
		}
		return n, err
	}
	return w.active.Write(b)
}

// rotateLocked seals the active segment and opens a fresh one starting at
// nextSeq; w.mu must be held. Retention (MaxSegments) is applied here.
func (w *WAL) rotateLocked(nextSeq uint64) error {
	if act := fpWalRotate.Check(); act != nil {
		act.Wait()
		if act.Err != nil {
			return fmt.Errorf("store: rotate: %w", act.Err)
		}
	}
	if err := w.syncFile(w.active); err != nil {
		return err
	}
	if err := w.active.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	seg, f, err := w.createSegment(nextSeq)
	if err != nil {
		return err
	}
	w.segs = append(w.segs, seg)
	w.active = f
	if w.opts.MaxSegments > 0 {
		removed := false
		for len(w.segs) > w.opts.MaxSegments {
			old := w.segs[0]
			// A segment referenced by a pending tombstone must survive
			// retention: dropping it would turn a scheduled redaction into
			// silent data loss (and break the erasure evidence). The pin
			// also blocks everything behind it — segments are removed
			// strictly from the front to keep recovery's continuity check.
			if w.pinnedLocked(old.firstSeq, old.endSeq()) {
				break
			}
			if err := os.Remove(old.path); err != nil {
				return fmt.Errorf("store: %w", err)
			}
			w.segs = w.segs[1:]
			removed = true
		}
		if removed {
			if err := w.syncDir(); err != nil {
				return err
			}
		}
	}
	return nil
}

// pinnedLocked reports whether a pinned seq blocks removal of the front
// segment covering [from, to); w.mu must be held. Segments are removed
// strictly from the front, so the cached minimum pinned seq decides: any
// pin below `to` (including a stale pin referencing an already-pruned
// record, conservatively) keeps the segment.
func (w *WAL) pinnedLocked(from, to uint64) bool {
	_ = from
	if len(w.pins) == 0 {
		return false
	}
	if w.pinMinStale {
		first := true
		for seq := range w.pins {
			if first || seq < w.pinMin {
				w.pinMin = seq
				first = false
			}
		}
		w.pinMinStale = false
	}
	return w.pinMin < to
}

// Pin marks a committed record as referenced (typically by a pending
// tombstone): retention (MaxSegments) and Prune will not drop the segment
// holding it until the returned release function is called. Pins nest;
// releasing is idempotent.
func (w *WAL) Pin(seq uint64) (release func()) {
	w.mu.Lock()
	if w.pins == nil {
		w.pins = make(map[uint64]int)
	}
	if len(w.pins) == 0 || (!w.pinMinStale && seq < w.pinMin) {
		w.pinMin = seq
	}
	w.pins[seq]++
	w.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			w.mu.Lock()
			if w.pins[seq]--; w.pins[seq] <= 0 {
				delete(w.pins, seq)
				if seq == w.pinMin {
					w.pinMinStale = true
				}
			}
			w.mu.Unlock()
		})
	}
}

// Pinned returns the number of distinct pinned sequence numbers.
func (w *WAL) Pinned() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.pins)
}

// FirstSeq returns the sequence number of the oldest retained record.
func (w *WAL) FirstSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.segs[0].firstSeq
}

// NextSeq returns the sequence number the next Append will be assigned.
func (w *WAL) NextSeq() uint64 {
	w.pendMu.Lock()
	defer w.pendMu.Unlock()
	return w.nextSeq
}

// DurableSeq returns the durability boundary: every record with a smaller
// sequence number has been committed to disk.
func (w *WAL) DurableSeq() uint64 {
	w.pendMu.Lock()
	defer w.pendMu.Unlock()
	return w.durableSeq
}

// Segments returns the number of on-disk segment files.
func (w *WAL) Segments() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.segs)
}

// snapshotSegs returns the segment metadata as value copies taken under
// the lock: the committer keeps mutating the live *segment structs
// (count, size, time bounds) while readers iterate, so handing out the
// pointers would race.
func (w *WAL) snapshotSegs() []segment {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]segment, len(w.segs))
	for i, s := range w.segs {
		out[i] = *s
	}
	return out
}

// ReadSeq streams every committed record with from <= Seq < to (to == 0
// means "to the end") through fn in sequence order. It syncs first, so a
// preceding Append is always visible. fn returning an error stops the
// scan and surfaces the error.
func (w *WAL) ReadSeq(from, to uint64, fn func(Entry) error) error {
	if err := w.Sync(); err != nil {
		return err
	}
	limit := w.DurableSeq()
	if to == 0 || to > limit {
		to = limit
	}
	for _, seg := range w.snapshotSegs() {
		if seg.endSeq() <= from || seg.firstSeq >= to {
			continue
		}
		if err := scanSegment(seg.path, func(e Entry) error {
			if e.Seq < from || e.Seq >= to {
				return nil
			}
			return fn(e)
		}); err != nil {
			return err
		}
	}
	return nil
}

// ReadTime streams every committed record with from <= Time < to through
// fn in sequence order. Time ranges use the per-segment min/max stamps to
// skip segments wholesale; within a candidate segment each record's own
// timestamp decides.
func (w *WAL) ReadTime(from, to time.Time, fn func(Entry) error) error {
	if err := w.Sync(); err != nil {
		return err
	}
	limit := w.DurableSeq()
	lo, hi := from.UnixNano(), to.UnixNano()
	for _, seg := range w.snapshotSegs() {
		if seg.count == 0 || seg.lastNano < lo || seg.firstNano >= hi {
			continue
		}
		if err := scanSegment(seg.path, func(e Entry) error {
			if e.Seq >= limit {
				return errStopScan
			}
			if n := e.Time.UnixNano(); n < lo || n >= hi {
				return nil
			}
			return fn(e)
		}); err != nil {
			return err
		}
	}
	return nil
}

// errStopScan terminates a scan early without surfacing an error.
var errStopScan = errors.New("store: stop scan")

// scanSegment reads one segment file and streams its frames. A torn frame
// ends the scan silently: it is either the in-flight tail of the active
// segment or a tail the next Open will truncate.
func scanSegment(path string, fn func(Entry) error) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := parseSegHeader(data); err != nil {
		return err
	}
	off := segHeaderLen
	for off < len(data) {
		fr, err := parseFrame(data[off:])
		if err != nil {
			return nil // torn tail of the active segment
		}
		e := Entry{Seq: fr.seq, Time: time.Unix(0, fr.unixNano), Payload: fr.payload}
		if err := fn(e); err != nil {
			if errors.Is(err, errStopScan) {
				return nil
			}
			return err
		}
		off += fr.size
	}
	return nil
}

// Prune deletes whole segments whose every record has Seq < upto — the
// disk-tier analogue of audit.Log.Prune. The active segment is first
// rotated away when it holds prunable records, so Prune(NextSeq()) after a
// Sync empties the log down to one fresh segment. It returns the number
// of segment files removed.
func (w *WAL) Prune(upto uint64) (int, error) {
	if err := w.Sync(); err != nil {
		return 0, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	active := w.segs[len(w.segs)-1]
	if active.count > 0 && active.endSeq() <= upto {
		if err := w.rotateLocked(active.endSeq()); err != nil {
			return 0, err
		}
	}
	removed := 0
	for len(w.segs) > 1 && w.segs[0].endSeq() <= upto {
		if w.pinnedLocked(w.segs[0].firstSeq, w.segs[0].endSeq()) {
			break // pending tombstone: keep the segment (and the front order)
		}
		if err := os.Remove(w.segs[0].path); err != nil {
			return removed, fmt.Errorf("store: %w", err)
		}
		w.segs = w.segs[1:]
		removed++
	}
	if removed > 0 {
		if err := w.syncDir(); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

// Redact rewrites the committed record with the given sequence number,
// replacing its payload with whatever replace returns — the WAL half of
// chain-preserving tombstones. See RedactMany for the mechanism.
func (w *WAL) Redact(seq uint64, replace func(old []byte) ([]byte, error)) error {
	return w.RedactMany([]uint64{seq}, func(_ uint64, old []byte) ([]byte, error) {
		return replace(old)
	})
}

// RedactMany rewrites the committed records with the given sequence
// numbers, replacing each payload with whatever replace returns. Each
// affected segment is rewritten exactly once — to a temporary file,
// fsynced and atomically renamed into place (frame sizes may change) — so
// a crash mid-redaction leaves either the old or the new segment, never a
// torn one, and a 10k-record erasure costs one rewrite per segment, not
// per record. Sequence numbers, timestamps and untargeted frames are
// preserved byte for byte. replace returning the payload unchanged makes
// that record a no-op.
func (w *WAL) RedactMany(seqs []uint64, replace func(seq uint64, old []byte) ([]byte, error)) error {
	if len(seqs) == 0 {
		return nil
	}
	if err := w.Sync(); err != nil {
		return err
	}
	w.pendMu.Lock()
	durable := w.durableSeq
	w.pendMu.Unlock()
	want := make(map[uint64]bool, len(seqs))
	for _, seq := range seqs {
		if seq >= durable {
			return fmt.Errorf("%w: seq %d not committed (durable through %d)", ErrNotRetained, seq, durable)
		}
		want[seq] = true
	}

	// Hold w.mu for the whole rewrite: the committer also writes under
	// w.mu, so the active file never moves underneath us.
	w.mu.Lock()
	defer w.mu.Unlock()
	matched := 0
	for segIdx, seg := range w.segs {
		hit := false
		for seq := range want {
			if seq >= seg.firstSeq && seq < seg.endSeq() {
				hit = true
				break
			}
		}
		if !hit {
			continue
		}
		n, err := w.redactSegmentLocked(segIdx, want, replace)
		if err != nil {
			return err
		}
		matched += n
	}
	if matched != len(want) {
		return fmt.Errorf("%w: %d of %d target records not found (pruned?)",
			ErrNotRetained, len(want)-matched, len(want))
	}
	return nil
}

// redactSegmentLocked rewrites one segment, replacing every frame whose
// seq is in want; w.mu must be held. Returns the number of frames
// replaced.
func (w *WAL) redactSegmentLocked(segIdx int, want map[uint64]bool,
	replace func(seq uint64, old []byte) ([]byte, error)) (int, error) {
	seg := w.segs[segIdx]
	data, err := os.ReadFile(seg.path)
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	if _, err := parseSegHeader(data); err != nil {
		return 0, err
	}
	out := make([]byte, 0, len(data))
	out = append(out, data[:segHeaderLen]...)
	off := segHeaderLen
	matched := 0
	for off < len(data) {
		fr, err := parseFrame(data[off:])
		if err != nil {
			return 0, fmt.Errorf("%w: %s: bad frame at offset %d", ErrCorrupt, seg.path, off)
		}
		if want[fr.seq] {
			next, err := replace(fr.seq, fr.payload)
			if err != nil {
				return 0, err
			}
			out = appendFrame(out, fr.seq, fr.unixNano, next)
			matched++
		} else {
			out = append(out, data[off:off+fr.size]...)
		}
		off += fr.size
	}
	if matched == 0 {
		return 0, nil
	}

	tmp := seg.path + ".redact"
	if err := os.WriteFile(tmp, out, 0o644); err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	if !w.opts.NoSync {
		f, err := os.Open(tmp)
		if err != nil {
			return 0, fmt.Errorf("store: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return 0, fmt.Errorf("store: %w", err)
		}
		f.Close()
	}
	activeSeg := segIdx == len(w.segs)-1
	// reattach reopens the (possibly rewritten) segment as the active file
	// at the given tail offset. It runs on every path after the close
	// below — including error paths, where leaving w.active closed would
	// wedge all future appends over a transient I/O failure.
	reattach := func(size int64) error {
		if !activeSeg {
			return nil
		}
		f, err := os.OpenFile(seg.path, os.O_RDWR, 0o644)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if _, err := f.Seek(size, io.SeekStart); err != nil {
			f.Close()
			return fmt.Errorf("store: %w", err)
		}
		w.active = f
		return nil
	}
	if activeSeg {
		// The rename is about to pull the file out from under the active
		// handle.
		if err := w.active.Close(); err != nil {
			return 0, fmt.Errorf("store: %w", err)
		}
	}
	if err := os.Rename(tmp, seg.path); err != nil {
		// The old segment is still in place; restore the handle on it.
		if rerr := reattach(seg.size); rerr != nil {
			return 0, fmt.Errorf("store: rename: %v; reattach: %w", err, rerr)
		}
		return 0, fmt.Errorf("store: %w", err)
	}
	seg.size = int64(len(out))
	if err := w.syncDir(); err != nil {
		if rerr := reattach(seg.size); rerr != nil {
			return 0, fmt.Errorf("store: dir sync: %v; reattach: %w", err, rerr)
		}
		return 0, err
	}
	if err := reattach(seg.size); err != nil {
		return 0, err
	}
	return matched, nil
}

// Close syncs and closes the WAL. Further appends fail with ErrClosed.
func (w *WAL) Close() error {
	err := w.Sync()
	w.pendMu.Lock()
	if w.closed {
		w.pendMu.Unlock()
		return nil
	}
	w.closed = true
	w.pendCond.Broadcast()
	w.pendMu.Unlock()

	w.mu.Lock()
	defer w.mu.Unlock()
	if cerr := w.active.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("store: %w", cerr)
	}
	return err
}

// Dir returns the directory the WAL lives in.
func (w *WAL) Dir() string { return w.dir }

// IsWALDir reports whether dir looks like a WAL directory (contains at
// least one segment file). Tools use it to distinguish a store directory
// from an exported JSON file.
func IsWALDir(dir string) bool {
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	return err == nil && len(names) > 0
}

// walFiles returns the sorted segment file names in dir (test helper and
// tooling support).
func walFiles(dir string) ([]string, error) {
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	for i, n := range names {
		names[i] = strings.TrimPrefix(n, dir+string(filepath.Separator))
	}
	return names, nil
}
