// Package store is the durability layer of the middleware: a segmented,
// append-only, CRC32C-framed write-ahead log with batched group commit,
// crash recovery and retention, plus an audit-specific adapter that keeps
// the tamper-evident hash chain contiguous across the memory/disk
// boundary.
//
// The paper's compliance argument rests on audit — regulators must be able
// to reconstruct who touched whose data — so the evidence cannot live only
// in process memory. The WAL gives every in-memory tier (the audit log,
// gateway store-and-forward buffers) a disk tier to offload to:
//
//   - WAL: seq-numbered, timestamped, CRC-framed records in rotating
//     segment files. Append enqueues and returns; a committer goroutine
//     writes each batch with a single fsync (group commit), so enforcement
//     hot paths never block on disk. Sync waits on a watermark, mirroring
//     audit.Log's AppendAsync/Flush design. Recovery replays segments,
//     truncates a torn tail, and resumes the sequence.
//   - AuditStore: a WAL of audit.Record values in the binary wire form
//     (audit.AppendRecordBinary). It verifies the hash chain on open,
//     primes a fresh audit.Log with the recovered chain head
//     (Log.Restore), persists every appended record via a log sink, and
//     lets Offload prune the in-memory log once records are durable —
//     tiered offload of exactly the segments audit.Log.Prune returns.
//   - Journal helpers used by the gateway to persist store-and-forward
//     buffers across restarts.
package store
