package store

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"lciot/internal/audit"
)

// fillSegments appends records until the WAL has rotated into at least n
// segments.
func fillSegments(t *testing.T, w *WAL, n int) {
	t.Helper()
	payload := bytes.Repeat([]byte{0xAB}, 256)
	for i := 0; w.Segments() < n; i++ {
		if _, err := w.Append(time.Unix(int64(i), 0), payload); err != nil {
			t.Fatal(err)
		}
		if i%16 == 15 {
			if err := w.Sync(); err != nil {
				t.Fatal(err)
			}
		}
		if i > 100000 {
			t.Fatal("segments never rotated")
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
}

// TestWALRedactRewritesInPlace checks that Redact replaces exactly the
// targeted payload, preserves every other frame, and survives reopen.
func TestWALRedactRewritesInPlace(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := w.Append(time.Unix(int64(i), 0), []byte(fmt.Sprintf("payload-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Redact(17, func(old []byte) ([]byte, error) {
		if string(old) != "payload-017" {
			return nil, fmt.Errorf("redact saw %q", old)
		}
		return []byte("tombstone"), nil
	}); err != nil {
		t.Fatal(err)
	}
	check := func(w *WAL, want int) {
		t.Helper()
		seen := 0
		err := w.ReadSeq(0, 0, func(e Entry) error {
			wantP := fmt.Sprintf("payload-%03d", e.Seq)
			if e.Seq == 17 {
				wantP = "tombstone"
			}
			if string(e.Payload) != wantP {
				return fmt.Errorf("seq %d: payload %q, want %q", e.Seq, e.Payload, wantP)
			}
			seen++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if seen != want {
			t.Fatalf("saw %d records, want %d", seen, want)
		}
	}
	check(w, 40)
	// Appending after a redaction of the active segment must still work:
	// the active handle was reattached at the rewritten tail.
	if _, err := w.Append(time.Unix(40, 0), []byte("payload-040")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Recovery must accept the rewritten segment.
	w2, err := Open(dir, Options{SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	check(w2, 41)
}

// TestWALRedactRange rejects uncommitted and pruned targets.
func TestWALRedactRange(t *testing.T) {
	w, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Append(time.Now(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := w.Redact(99, func(b []byte) ([]byte, error) { return b, nil }); !errors.Is(err, ErrNotRetained) {
		t.Fatalf("redact beyond head = %v, want ErrNotRetained", err)
	}
}

// TestMaxSegmentsRespectsPins is the regression test for the
// retention/redaction interplay: MaxSegments pruning must not drop a
// segment still referenced by a pending tombstone.
func TestMaxSegmentsRespectsPins(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 2 << 10, MaxSegments: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	fillSegments(t, w, 2)
	// Pin a record in the oldest segment, then keep appending far past the
	// retention bound.
	pinned := w.FirstSeq()
	release := w.Pin(pinned)
	fillSegments(t, w, 8)
	if got := w.FirstSeq(); got > pinned {
		t.Fatalf("retention dropped pinned seq %d (first retained now %d)", pinned, got)
	}
	// The pinned record must still be readable (and redactable).
	found := false
	if err := w.ReadSeq(pinned, pinned+1, func(e Entry) error { found = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatalf("pinned seq %d unreadable", pinned)
	}
	// Releasing the pin lets the next rotation apply retention again: keep
	// appending until a rotation happens and check the backlog collapsed
	// back to the bound.
	release()
	release() // idempotent
	before := w.Segments()
	payload := bytes.Repeat([]byte{0xCD}, 256)
	for i := 0; w.Segments() >= before; i++ {
		if _, err := w.Append(time.Now(), payload); err != nil {
			t.Fatal(err)
		}
		if err := w.Sync(); err != nil {
			t.Fatal(err)
		}
		if i > 100000 {
			t.Fatalf("retention never resumed after release: %d segments", w.Segments())
		}
	}
	if got := w.Segments(); got > 3 {
		t.Fatalf("retention resumed but kept %d segments, want <= 3", got)
	}
	// Prune must honour pins the same way.
	p := w.Pin(w.FirstSeq())
	defer p()
	if _, err := w.Prune(w.NextSeq()); err != nil {
		t.Fatal(err)
	}
	if got := w.FirstSeq(); got != 0 && w.Segments() > 0 {
		// The pinned front segment must have survived the prune.
		first := w.FirstSeq()
		if first > w.NextSeq() {
			t.Fatalf("prune dropped pinned segment: first %d", first)
		}
	}
}

// TestAuditStoreRedactTombstone checks the full disk-tier erasure: redact
// a record, verify the chain end to end, reopen, verify again.
func TestAuditStoreRedactTombstone(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenAudit(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	log := audit.NewLog(nil)
	if err := s.AttachLog(log); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		log.Append(audit.Record{
			Kind: audit.FlowAllowed, Layer: audit.LayerMessaging, Domain: "d",
			Src: "sensor", Dst: "analyser", DataID: fmt.Sprintf("datum-%d", i),
			Note: "delivery",
		})
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	n, err := s.Redact(7, "retention expired")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("redacted %d records, want 1", n)
	}
	// Idempotent.
	if n, err = s.Redact(7, "again"); err != nil || n != 0 {
		t.Fatalf("second redaction = (%d, %v), want (0, nil)", n, err)
	}
	if bad, err := s.Verify(); err != nil {
		t.Fatalf("chain broken at %d after redaction: %v", bad, err)
	}
	recs, err := s.Records(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !recs[7].Redacted || recs[7].DataID != "" || recs[7].Src != "" {
		t.Fatalf("record 7 not tombstoned: %+v", recs[7])
	}
	if recs[8].PrevHash != recs[7].Hash {
		t.Fatal("tombstone broke the chain linkage")
	}
	if err := audit.VerifySegment(recs, nil); err != nil {
		t.Fatalf("VerifySegment over tombstoned set: %v", err)
	}
	s.Close()

	// Recovery must verify the redacted chain and keep appending on it.
	s2, err := OpenAudit(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after redaction: %v", err)
	}
	defer s2.Close()
	log2 := audit.NewLog(nil)
	if err := s2.AttachLog(log2); err != nil {
		t.Fatal(err)
	}
	log2.Append(audit.Record{Kind: audit.Reconfiguration, Domain: "d", Note: "post-redaction boot"})
	if err := s2.Sync(); err != nil {
		t.Fatal(err)
	}
	if bad, err := s2.Verify(); err != nil {
		t.Fatalf("chain broken at %d after reopen+append: %v", bad, err)
	}
}
