package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// On-disk layout. A segment file is a 16-byte header followed by frames:
//
//	header: "LCWS" | u16 version | u16 reserved | u64 firstSeq
//	frame:  u32 payloadLen | u32 crc32c | u64 seq | s64 unixNano | payload
//
// The CRC (Castagnoli polynomial, the hardware-accelerated one) covers the
// seq, timestamp and payload — everything after the crc field — so a torn
// or bit-flipped frame is detected before anything is decoded. Segments
// are named wal-<firstSeq>.seg with a fixed-width decimal sequence so the
// directory listing sorts in log order.

const (
	segMagic     = "LCWS"
	segVersion   = 1
	segHeaderLen = 16
	// frameOverhead is the fixed framing cost per record.
	frameOverhead = 4 + 4 + 8 + 8
	// maxPayload bounds one record; larger payloads indicate corruption or
	// a caller bug, not data.
	maxPayload = 16 << 20
)

// castagnoli is the CRC32C table shared by all framing code.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a segment that fails structural validation somewhere
// other than its tail (a torn tail is repaired silently; corruption in the
// committed body is surfaced, because fsync ordering makes it impossible
// from a crash alone).
var ErrCorrupt = errors.New("store: segment corrupt")

// segName renders the canonical file name for a segment starting at seq.
func segName(firstSeq uint64) string {
	return fmt.Sprintf("wal-%020d.seg", firstSeq)
}

// appendSegHeader appends a segment header to dst.
func appendSegHeader(dst []byte, firstSeq uint64) []byte {
	dst = append(dst, segMagic...)
	dst = binary.BigEndian.AppendUint16(dst, segVersion)
	dst = binary.BigEndian.AppendUint16(dst, 0)
	return binary.BigEndian.AppendUint64(dst, firstSeq)
}

// parseSegHeader validates a segment header and returns its firstSeq.
func parseSegHeader(b []byte) (uint64, error) {
	if len(b) < segHeaderLen || string(b[:4]) != segMagic {
		return 0, fmt.Errorf("%w: bad header", ErrCorrupt)
	}
	if v := binary.BigEndian.Uint16(b[4:]); v != segVersion {
		return 0, fmt.Errorf("%w: unsupported segment version %d", ErrCorrupt, v)
	}
	return binary.BigEndian.Uint64(b[8:]), nil
}

// appendFrame appends one framed record to dst.
func appendFrame(dst []byte, seq uint64, unixNano int64, payload []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	crcAt := len(dst)
	dst = binary.BigEndian.AppendUint32(dst, 0) // crc placeholder
	body := len(dst)
	dst = binary.BigEndian.AppendUint64(dst, seq)
	dst = binary.BigEndian.AppendUint64(dst, uint64(unixNano))
	dst = append(dst, payload...)
	crc := crc32.Checksum(dst[body:], castagnoli)
	binary.BigEndian.PutUint32(dst[crcAt:], crc)
	return dst
}

// frameInfo describes one decoded frame within a segment buffer.
type frameInfo struct {
	seq      uint64
	unixNano int64
	payload  []byte // aliases the scan buffer
	size     int    // total frame size including framing
}

// errTorn reports a frame that is structurally incomplete or fails its
// CRC — the expected state of a segment tail after a crash.
var errTorn = errors.New("store: torn frame")

// parseFrame decodes the frame at the start of b.
func parseFrame(b []byte) (frameInfo, error) {
	if len(b) < frameOverhead {
		return frameInfo{}, errTorn
	}
	n := binary.BigEndian.Uint32(b)
	if n > maxPayload {
		return frameInfo{}, errTorn
	}
	total := frameOverhead + int(n)
	if len(b) < total {
		return frameInfo{}, errTorn
	}
	wantCRC := binary.BigEndian.Uint32(b[4:])
	if crc32.Checksum(b[8:total], castagnoli) != wantCRC {
		return frameInfo{}, errTorn
	}
	return frameInfo{
		seq:      binary.BigEndian.Uint64(b[8:]),
		unixNano: int64(binary.BigEndian.Uint64(b[16:])),
		payload:  b[frameOverhead:total],
		size:     total,
	}, nil
}
