package store

import (
	"errors"
	"syscall"
	"testing"

	"lciot/internal/audit"
	"lciot/internal/fault"
)

// TestAuditStoreDegradesOnWriteFailure drives the degradation ladder's
// first rung: a WAL write error (injected ENOSPC) must flip the store
// into degraded mode — sticky typed error from Sync and Append, chain
// head still advancing, records buffered in memory — instead of wedging
// group commit or dropping records silently.
func TestAuditStoreDegradesOnWriteFailure(t *testing.T) {
	defer fault.DisarmAll()
	s, err := OpenAudit(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	l := audit.NewLog(testClock())
	if err := s.AttachLog(l); err != nil {
		t.Fatal(err)
	}

	fault.Arm("store.wal.write", fault.Always(fault.Action{Err: fault.Wrap(syscall.ENOSPC)}))
	for i := 0; i < 10; i++ {
		l.Append(flowRec("sensor", "analyser"))
	}
	err = s.Sync()
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("Sync after write failure = %v, want ErrDegraded", err)
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("degraded error does not wrap root cause: %v", err)
	}

	// The error is sticky and further appends keep the chain linked in
	// memory rather than vanishing.
	before := s.Health()
	r := l.Append(flowRec("sensor", "analyser"))
	h := s.Health()
	if !h.Degraded || !errors.Is(h.Cause, syscall.ENOSPC) {
		t.Fatalf("health = %+v, want degraded with ENOSPC cause", h)
	}
	if h.Buffered <= before.Buffered {
		t.Fatalf("buffered did not grow: %d -> %d", before.Buffered, h.Buffered)
	}
	if got := s.NextSeq(); got != r.Seq+1 {
		t.Fatalf("chain head did not advance: NextSeq %d, want %d", got, r.Seq+1)
	}
	recs := s.BufferedRecords()
	if len(recs) == 0 || recs[len(recs)-1].Hash != r.Hash {
		t.Fatal("buffered records do not end at the chain head")
	}
	if err := s.Sync(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("second Sync = %v, want sticky ErrDegraded", err)
	}
	_ = s.Close()
}

// TestAuditStoreDegradedShedBound checks the buffer bound: beyond
// maxDegradedBuffer records are shed and counted, never buffered without
// bound and never dropped silently.
func TestAuditStoreDegradedShedBound(t *testing.T) {
	defer fault.DisarmAll()
	s, err := OpenAudit(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	l := audit.NewLog(testClock())
	if err := s.AttachLog(l); err != nil {
		t.Fatal(err)
	}
	fault.Arm("store.wal.write", fault.Always(fault.Action{Err: fault.Wrap(syscall.ENOSPC)}))
	l.Append(flowRec("a", "b"))
	if err := s.Sync(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Sync = %v, want ErrDegraded", err)
	}
	const extra = 5
	for i := 0; i < maxDegradedBuffer+extra; i++ {
		l.Append(flowRec("a", "b"))
	}
	h := s.Health()
	if h.Buffered != maxDegradedBuffer {
		t.Fatalf("buffered = %d, want %d", h.Buffered, maxDegradedBuffer)
	}
	if h.Shed < extra {
		t.Fatalf("shed = %d, want >= %d", h.Shed, extra)
	}
	// The head still tracks every record, shed or not: the chain stays
	// contiguous for whoever inspects it.
	next, _ := l.Checkpoint()
	if got := s.NextSeq(); got != next {
		t.Fatalf("NextSeq %d diverges from log head %d", got, next)
	}
	_ = s.Close()
}

// TestAuditStoreFsyncFailureDegrades exercises the fsync seam: an
// injected fsync error must degrade the store exactly like a failed
// write.
func TestAuditStoreFsyncFailureDegrades(t *testing.T) {
	defer fault.DisarmAll()
	s, err := OpenAudit(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	l := audit.NewLog(testClock())
	if err := s.AttachLog(l); err != nil {
		t.Fatal(err)
	}
	fault.Arm("store.wal.fsync", fault.Always(fault.Action{Err: fault.Wrap(syscall.EIO)}))
	l.Append(flowRec("a", "b"))
	err = s.Sync()
	if !errors.Is(err, ErrDegraded) || !errors.Is(err, syscall.EIO) {
		t.Fatalf("Sync after fsync failure = %v, want ErrDegraded wrapping EIO", err)
	}
	_ = s.Close()
}

// TestAuditStoreCloseIsNotDegradation: ErrClosed is a normal shutdown
// signal, not an I/O failure — appending to a closed store must fail
// without flipping health to degraded.
func TestAuditStoreCloseIsNotDegradation(t *testing.T) {
	s, err := OpenAudit(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	l := audit.NewLog(testClock())
	if err := s.AttachLog(l); err != nil {
		t.Fatal(err)
	}
	r := l.Append(flowRec("a", "b"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	next := audit.Record{Seq: r.Seq + 1, PrevHash: r.Hash}
	next.Hash = audit.HashRecord(&next)
	if err := s.Append(next); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if h := s.Health(); h.Degraded {
		t.Fatalf("closed store reports degraded: %+v", h)
	}
}
