package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func appendN(t *testing.T, w *WAL, start, n int) {
	t.Helper()
	for i := start; i < start+n; i++ {
		if _, err := w.Append(time.Unix(int64(1000+i), 0), []byte(fmt.Sprintf("payload-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
}

func collect(t *testing.T, w *WAL, from, to uint64) []Entry {
	t.Helper()
	var out []Entry
	if err := w.ReadSeq(from, to, func(e Entry) error {
		out = append(out, Entry{Seq: e.Seq, Time: e.Time, Payload: append([]byte(nil), e.Payload...)})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestWALAppendReadRoundTrip(t *testing.T) {
	w, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendN(t, w, 0, 100)

	got := collect(t, w, 0, 0)
	if len(got) != 100 {
		t.Fatalf("read %d entries, want 100", len(got))
	}
	for i, e := range got {
		if e.Seq != uint64(i) {
			t.Fatalf("entry %d has seq %d", i, e.Seq)
		}
		if want := fmt.Sprintf("payload-%04d", i); string(e.Payload) != want {
			t.Fatalf("entry %d payload %q, want %q", i, e.Payload, want)
		}
		if e.Time.Unix() != int64(1000+i) {
			t.Fatalf("entry %d time %v", i, e.Time)
		}
	}

	// Range reads.
	mid := collect(t, w, 10, 20)
	if len(mid) != 10 || mid[0].Seq != 10 || mid[9].Seq != 19 {
		t.Fatalf("range read = %d entries [%d..%d]", len(mid), mid[0].Seq, mid[len(mid)-1].Seq)
	}
}

func TestWALReadTime(t *testing.T) {
	w, err := Open(t.TempDir(), Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendN(t, w, 0, 50) // times 1000..1049, several segments

	var got []uint64
	err = w.ReadTime(time.Unix(1010, 0), time.Unix(1020, 0), func(e Entry) error {
		got = append(got, e.Seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Fatalf("time range = %v", got)
	}
}

func TestWALReopenResumesSequence(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 40)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(dir, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.NextSeq() != 40 {
		t.Fatalf("reopened NextSeq = %d, want 40", w2.NextSeq())
	}
	appendN(t, w2, 40, 10)
	got := collect(t, w2, 0, 0)
	if len(got) != 50 || got[49].Seq != 49 {
		t.Fatalf("after reopen+append: %d entries", len(got))
	}
}

func TestWALRotationAndPrune(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendN(t, w, 0, 100)
	if w.Segments() < 3 {
		t.Fatalf("expected rotation, got %d segments", w.Segments())
	}

	removed, err := w.Prune(50)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("prune removed nothing")
	}
	first := w.FirstSeq()
	if first == 0 || first > 50 {
		t.Fatalf("FirstSeq after prune = %d", first)
	}
	// Retained records still read back; pruned ones are gone.
	got := collect(t, w, 0, 0)
	if got[0].Seq != first || got[len(got)-1].Seq != 99 {
		t.Fatalf("after prune entries span [%d..%d], want [%d..99]", got[0].Seq, got[len(got)-1].Seq, first)
	}

	// Prune everything: rotates the active segment away and leaves an
	// empty log that still resumes at 100.
	if _, err := w.Prune(w.NextSeq()); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, w, 0, 0); len(got) != 0 {
		t.Fatalf("fully pruned log still returns %d entries", len(got))
	}
	appendN(t, w, 100, 1)
	if got := collect(t, w, 0, 0); len(got) != 1 || got[0].Seq != 100 {
		t.Fatalf("append after full prune = %+v", got)
	}
}

func TestWALRetentionMaxSegments(t *testing.T) {
	w, err := Open(t.TempDir(), Options{SegmentBytes: 256, MaxSegments: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendN(t, w, 0, 200)
	if got := w.Segments(); got > 3 {
		t.Fatalf("retention kept %d segments, want <= 3", got)
	}
	if w.FirstSeq() == 0 {
		t.Fatal("retention deleted nothing")
	}
}

// TestWALTornTailTruncation is the torn-tail property test: whatever byte
// offset a crash tears the final segment at, recovery keeps exactly the
// records whose frames survive intact and loses only the tail.
func TestWALTornTailTruncation(t *testing.T) {
	master := t.TempDir()
	w, err := Open(master, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 20)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	files, err := walFiles(master)
	if err != nil || len(files) != 1 {
		t.Fatalf("files = %v, %v", files, err)
	}
	data, err := os.ReadFile(filepath.Join(master, files[0]))
	if err != nil {
		t.Fatal(err)
	}

	// Frame boundaries: offset after header, then each frame.
	var bounds []int
	off := segHeaderLen
	for off < len(data) {
		fr, err := parseFrame(data[off:])
		if err != nil {
			t.Fatalf("master segment torn at %d: %v", off, err)
		}
		off += fr.size
		bounds = append(bounds, off)
	}

	for cut := segHeaderLen; cut <= len(data); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, files[0]), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		want := 0
		for _, b := range bounds {
			if b <= cut {
				want++
			}
		}
		got := collect(t, w2, 0, 0)
		if len(got) != want {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(got), want)
		}
		if w2.NextSeq() != uint64(want) {
			t.Fatalf("cut %d: NextSeq %d, want %d", cut, w2.NextSeq(), want)
		}
		// The log must accept appends after repair.
		if _, err := w2.Append(time.Unix(2000, 0), []byte("resume")); err != nil {
			t.Fatalf("cut %d: append after repair: %v", cut, err)
		}
		if err := w2.Sync(); err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		w2.Close()
	}
}

func TestWALCorruptionInSealedSegmentRefusesOpen(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 60)
	if w.Segments() < 2 {
		t.Fatalf("need at least 2 segments, have %d", w.Segments())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	files, err := walFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, files[0]) // a sealed (non-final) segment
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{SegmentBytes: 256}); err == nil {
		t.Fatal("corrupted sealed segment opened without error")
	}
}

func TestWALBackpressureAndConcurrentAppend(t *testing.T) {
	w, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	const (
		goroutines = 8
		perG       = 500
	)
	done := make(chan error, goroutines)
	payload := bytes.Repeat([]byte("x"), 64)
	for g := 0; g < goroutines; g++ {
		go func() {
			for i := 0; i < perG; i++ {
				if _, err := w.Append(time.Time{}, payload); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < goroutines; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	got := collect(t, w, 0, 0)
	if len(got) != goroutines*perG {
		t.Fatalf("read %d entries, want %d", len(got), goroutines*perG)
	}
	for i, e := range got {
		if e.Seq != uint64(i) {
			t.Fatalf("gap at %d: seq %d", i, e.Seq)
		}
	}
}

func TestWALClosedAppendFails(t *testing.T) {
	w, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(time.Time{}, []byte("x")); err == nil {
		t.Fatal("append on closed WAL succeeded")
	}
}
