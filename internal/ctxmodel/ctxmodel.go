// Package ctxmodel represents the environmental context that policy is
// conditioned on (Section 3 Concern 6, Section 10.2): location, time, duty
// rosters, emergency state. "Policy is inherently contextual, defined to be
// enforced in particular circumstances", so the store supports atomic
// snapshots (a rule must be evaluated against one consistent world view)
// and change subscriptions (the policy engine reacts to context change).
package ctxmodel

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"
)

// A Value is a typed context attribute value. Exactly one field is set.
type Value struct {
	Kind ValueKind
	Str  string
	Num  float64
	Bool bool
	Time time.Time
}

// ValueKind discriminates Value.
type ValueKind int

// Value kinds.
const (
	KindString ValueKind = iota + 1
	KindNumber
	KindBool
	KindTime
)

// String builds a string value.
func String(s string) Value { return Value{Kind: KindString, Str: s} }

// Number builds a numeric value.
func Number(f float64) Value { return Value{Kind: KindNumber, Num: f} }

// Bool builds a boolean value.
func Bool(b bool) Value { return Value{Kind: KindBool, Bool: b} }

// Time builds a time value.
func Time(t time.Time) Value { return Value{Kind: KindTime, Time: t} }

// Equal reports whether two values are identical in kind and content.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindString:
		return v.Str == o.Str
	case KindNumber:
		return v.Num == o.Num
	case KindBool:
		return v.Bool == o.Bool
	case KindTime:
		return v.Time.Equal(o.Time)
	default:
		return false
	}
}

// String implements fmt.Stringer.
func (v Value) String() string {
	switch v.Kind {
	case KindString:
		return v.Str
	case KindNumber:
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.Bool)
	case KindTime:
		return v.Time.Format(time.RFC3339)
	default:
		return fmt.Sprintf("Value(kind=%d)", int(v.Kind))
	}
}

// A Snapshot is an immutable view of the context at one instant.
type Snapshot struct {
	values  map[string]Value
	Version uint64
	At      time.Time
}

// Get returns the value of an attribute.
func (s Snapshot) Get(key string) (Value, bool) {
	v, ok := s.values[key]
	return v, ok
}

// Keys returns the attribute names in sorted order.
func (s Snapshot) Keys() []string {
	out := make([]string, 0, len(s.values))
	for k := range s.values {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// A Change describes one attribute update delivered to subscribers.
type Change struct {
	Key      string
	Old, New Value
	HadOld   bool
	Version  uint64
}

// A Store is a concurrent context store with versioned snapshots and
// subscriptions. The zero value is ready to use.
type Store struct {
	mu      sync.RWMutex
	values  map[string]Value
	version uint64
	now     func() time.Time
	subs    map[int]chan Change
	nextSub int
	// hooks run synchronously, in registration order, after each Set, on
	// the caller's goroutine. The policy engine uses a hook so that
	// context-triggered rules evaluate deterministically.
	hooks []func(Change)
}

// NewStore builds a store; nil clock means time.Now.
func NewStore(clock func() time.Time) *Store {
	if clock == nil {
		clock = time.Now
	}
	return &Store{values: make(map[string]Value), now: clock, subs: make(map[int]chan Change)}
}

// AddHook registers a synchronous change observer, invoked on the Set
// caller's goroutine after the write commits. Hooks may themselves call
// Set (no lock is held during invocation); they are responsible for their
// own termination.
func (s *Store) AddHook(fn func(Change)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hooks = append(s.hooks, fn)
}

// Set updates an attribute and notifies subscribers and hooks. It returns
// the new store version.
func (s *Store) Set(key string, v Value) uint64 {
	s.mu.Lock()
	old, had := s.values[key]
	s.values[key] = v
	s.version++
	ver := s.version
	ch := Change{Key: key, Old: old, New: v, HadOld: had, Version: ver}
	subs := make([]chan Change, 0, len(s.subs))
	for _, c := range s.subs {
		subs = append(subs, c)
	}
	hooks := s.hooks
	s.mu.Unlock()

	for _, c := range subs {
		// Best effort: a slow subscriber must not stall context updates;
		// it can always resynchronise from a snapshot.
		select {
		case c <- ch:
		default:
		}
	}
	for _, h := range hooks {
		h(ch)
	}
	return ver
}

// Delete removes an attribute.
func (s *Store) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.values, key)
	s.version++
}

// DeleteMatching removes every attribute whose key the predicate accepts,
// returning how many were dropped. Erasure obligations use it to purge
// context state derived from an erased subject (attributes are keyed by
// subject-prefixed names by convention, e.g. "ann/heart-rate"). Hooks and
// subscribers are deliberately not notified: erasure removes facts, it
// must not look like new context to react to.
func (s *Store) DeleteMatching(match func(key string) bool) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for k := range s.values {
		if match(k) {
			delete(s.values, k)
			n++
		}
	}
	if n > 0 {
		s.version++
	}
	return n
}

// Get returns the current value of one attribute.
func (s *Store) Get(key string) (Value, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.values[key]
	return v, ok
}

// Snapshot returns an immutable copy of the whole context.
func (s *Store) Snapshot() Snapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	cp := make(map[string]Value, len(s.values))
	for k, v := range s.values {
		cp[k] = v
	}
	return Snapshot{values: cp, Version: s.version, At: s.now()}
}

// Subscribe returns a channel of changes and a cancel function. The channel
// has a small buffer; overflowing changes are dropped (subscribers
// resynchronise via Snapshot), keeping the store non-blocking.
func (s *Store) Subscribe() (<-chan Change, func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.nextSub
	s.nextSub++
	ch := make(chan Change, 64)
	s.subs[id] = ch
	return ch, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if c, ok := s.subs[id]; ok {
			delete(s.subs, id)
			close(c)
		}
	}
}

// MakeSnapshot builds a snapshot directly from a map; used by tests and by
// policy evaluation over hypothetical contexts.
func MakeSnapshot(values map[string]Value) Snapshot {
	cp := make(map[string]Value, len(values))
	for k, v := range values {
		cp[k] = v
	}
	return Snapshot{values: cp}
}
