package ctxmodel

import (
	"sync"
	"testing"
	"time"
)

func TestValueConstructorsAndEquality(t *testing.T) {
	now := time.Unix(1000, 0)
	tests := []struct {
		name string
		a, b Value
		want bool
	}{
		{"string-equal", String("x"), String("x"), true},
		{"string-diff", String("x"), String("y"), false},
		{"number-equal", Number(1.5), Number(1.5), true},
		{"number-diff", Number(1.5), Number(2), false},
		{"bool-equal", Bool(true), Bool(true), true},
		{"bool-diff", Bool(true), Bool(false), false},
		{"time-equal", Time(now), Time(now), true},
		{"time-diff", Time(now), Time(now.Add(time.Second)), false},
		{"kind-mismatch", String("1"), Number(1), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Equal(tt.b); got != tt.want {
				t.Fatalf("Equal = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestValueString(t *testing.T) {
	if String("home").String() != "home" {
		t.Error("string render")
	}
	if Number(2.5).String() != "2.5" {
		t.Error("number render:", Number(2.5).String())
	}
	if Bool(true).String() != "true" {
		t.Error("bool render")
	}
	if (Value{}).String() != "Value(kind=0)" {
		t.Error("zero value render:", (Value{}).String())
	}
}

func TestStoreSetGetDelete(t *testing.T) {
	s := NewStore(nil)
	v1 := s.Set("location", String("home"))
	v2 := s.Set("heart-rate", Number(72))
	if v2 <= v1 {
		t.Fatal("versions must increase")
	}
	got, ok := s.Get("location")
	if !ok || got.Str != "home" {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	s.Delete("location")
	if _, ok := s.Get("location"); ok {
		t.Fatal("deleted key still present")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	clock := time.Unix(5000, 0)
	s := NewStore(func() time.Time { return clock })
	s.Set("emergency", Bool(false))

	snap := s.Snapshot()
	s.Set("emergency", Bool(true))

	// The snapshot must not see the later write.
	v, ok := snap.Get("emergency")
	if !ok || v.Bool {
		t.Fatalf("snapshot leaked later write: %v", v)
	}
	v2, _ := s.Snapshot().Get("emergency")
	if !v2.Bool {
		t.Fatal("store lost write")
	}
	if snap.At != clock {
		t.Fatalf("snapshot At = %v", snap.At)
	}
	if s.Snapshot().Version <= snap.Version {
		t.Fatal("version did not advance")
	}
}

func TestSnapshotKeysSorted(t *testing.T) {
	s := NewStore(nil)
	s.Set("z", Number(1))
	s.Set("a", Number(2))
	s.Set("m", Number(3))
	keys := s.Snapshot().Keys()
	want := []string{"a", "m", "z"}
	for i, k := range want {
		if keys[i] != k {
			t.Fatalf("Keys() = %v, want %v", keys, want)
		}
	}
}

func TestSubscription(t *testing.T) {
	s := NewStore(nil)
	ch, cancel := s.Subscribe()
	defer cancel()

	s.Set("location", String("work"))
	select {
	case c := <-ch:
		if c.Key != "location" || c.New.Str != "work" || c.HadOld {
			t.Fatalf("change = %+v", c)
		}
	case <-time.After(time.Second):
		t.Fatal("no change delivered")
	}

	s.Set("location", String("home"))
	c := <-ch
	if !c.HadOld || c.Old.Str != "work" || c.New.Str != "home" {
		t.Fatalf("second change = %+v", c)
	}
}

func TestSubscriptionCancelCloses(t *testing.T) {
	s := NewStore(nil)
	ch, cancel := s.Subscribe()
	cancel()
	if _, open := <-ch; open {
		t.Fatal("channel not closed on cancel")
	}
	// Double cancel must not panic.
	cancel()
	// Writes after cancel must not panic either.
	s.Set("x", Number(1))
}

func TestSlowSubscriberDoesNotBlockStore(t *testing.T) {
	s := NewStore(nil)
	_, cancel := s.Subscribe() // never drained
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ { // far more than the buffer
			s.Set("k", Number(float64(i)))
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("store blocked on slow subscriber")
	}
}

func TestMakeSnapshotCopies(t *testing.T) {
	m := map[string]Value{"a": Number(1)}
	snap := MakeSnapshot(m)
	m["a"] = Number(2)
	v, _ := snap.Get("a")
	if v.Num != 1 {
		t.Fatal("MakeSnapshot aliased caller map")
	}
}

func TestStoreConcurrent(t *testing.T) {
	s := NewStore(nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			key := string(rune('a' + n))
			for j := 0; j < 200; j++ {
				s.Set(key, Number(float64(j)))
				_ = s.Snapshot()
				_, _ = s.Get(key)
			}
		}(i)
	}
	wg.Wait()
	if len(s.Snapshot().Keys()) != 8 {
		t.Fatal("lost keys under concurrency")
	}
}
