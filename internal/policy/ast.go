package policy

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"lciot/internal/ctxmodel"
	"lciot/internal/ifc"
)

// TriggerKind classifies what fires a rule.
type TriggerKind int

// Trigger kinds.
const (
	TriggerEvent TriggerKind = iota + 1
	TriggerContext
	TriggerTimer
)

// String implements fmt.Stringer.
func (k TriggerKind) String() string {
	switch k {
	case TriggerEvent:
		return "event"
	case TriggerContext:
		return "context"
	case TriggerTimer:
		return "timer"
	default:
		return fmt.Sprintf("TriggerKind(%d)", int(k))
	}
}

// A Trigger states when a rule is considered.
type Trigger struct {
	Kind TriggerKind
	// Pattern is the detection pattern name for TriggerEvent.
	Pattern string
	// Key is the context attribute for TriggerContext.
	Key string
	// Every is the period for TriggerTimer.
	Every time.Duration
}

// A Rule is one ECA rule.
type Rule struct {
	Name     string
	Priority int
	Trigger  Trigger
	// When is the optional guard; nil means always.
	When Expr
	// Do is the action list, in order.
	Do []Action

	// lastFiredNs (UnixNano) and fired are engine-internal firing stats,
	// stored atomically so concurrent dispatch lanes never serialize on
	// per-rule bookkeeping. "Never fired" is fired == 0, not a sentinel
	// timestamp, so simulated clocks at the epoch stay correct.
	lastFiredNs atomic.Int64
	fired       atomic.Uint64
}

// A PolicySet is a parsed collection of rules and obligations.
type PolicySet struct {
	Rules []*Rule
	// Obligations are the data-management declarations (retention, erasure,
	// residency, purpose limitation) attached to tags; the obligation
	// engine (internal/obligation) compiles and enforces them.
	Obligations []*Obligation
}

// An Obligation declares the data-management duties attached to one tag
// (Singh et al. §3/§7: retention limits, the right to erasure,
// jurisdictional residency, purpose limitation):
//
//	obligation "gdpr-medical" on medical {
//	  retain 720h;
//	  erase on "subject-erasure";
//	  residency eu uk;
//	  purpose research treatment;
//	}
type Obligation struct {
	Name string
	Tag  ifc.Tag
	// Retain bounds how long data under the tag may be kept; HasRetain
	// distinguishes "no retain clause" from an explicit zero (which the
	// linter rejects as meaningless).
	Retain    time.Duration
	HasRetain bool
	// EraseOn lists detection pattern names whose firing triggers erasure
	// of every datum under the tag.
	EraseOn []string
	// Residency lists the jurisdictions data under the tag may reside in
	// (compiled to the context's Jurisdiction facet).
	Residency []ifc.Tag
	// Purpose lists the processing purposes data under the tag permits
	// (compiled to the context's Purpose facet).
	Purpose []ifc.Tag
}

// String renders the obligation back to (normalised) source.
func (o *Obligation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "obligation %q on %s {", o.Name, o.Tag)
	if o.HasRetain {
		fmt.Fprintf(&b, " retain %s;", o.Retain)
	}
	for _, ev := range o.EraseOn {
		fmt.Fprintf(&b, " erase on %q;", ev)
	}
	if len(o.Residency) > 0 {
		b.WriteString(" residency")
		for _, j := range o.Residency {
			fmt.Fprintf(&b, " %s", j)
		}
		b.WriteString(";")
	}
	if len(o.Purpose) > 0 {
		b.WriteString(" purpose")
		for _, p := range o.Purpose {
			fmt.Fprintf(&b, " %s", p)
		}
		b.WriteString(";")
	}
	b.WriteString(" }")
	return b.String()
}

// Expr is a boolean/value expression over the evaluation environment.
type Expr interface {
	// Eval computes the expression's value.
	Eval(env *Env) (ctxmodel.Value, error)
	// String renders source-like text.
	String() string
}

// A Lit is a literal value.
type Lit struct{ Val ctxmodel.Value }

// Eval implements Expr.
func (l *Lit) Eval(*Env) (ctxmodel.Value, error) { return l.Val, nil }

// String implements Expr.
func (l *Lit) String() string {
	if l.Val.Kind == ctxmodel.KindString {
		return fmt.Sprintf("%q", l.Val.Str)
	}
	return l.Val.String()
}

// A Path references environment data: "ctx.<key>" or "event.<field>".
type Path struct {
	Root  string // "ctx" or "event"
	Field string
}

// Eval implements Expr.
func (p *Path) Eval(env *Env) (ctxmodel.Value, error) { return env.lookup(p) }

// String implements Expr.
func (p *Path) String() string { return p.Root + "." + p.Field }

// A Binary is a two-operand operation.
type Binary struct {
	Op   string // "==", "!=", "<", "<=", ">", ">=", "and", "or"
	L, R Expr
}

// Eval implements Expr.
func (b *Binary) Eval(env *Env) (ctxmodel.Value, error) {
	switch b.Op {
	case "and", "or":
		lv, err := evalBool(b.L, env)
		if err != nil {
			return ctxmodel.Value{}, err
		}
		// Short circuit.
		if b.Op == "and" && !lv {
			return ctxmodel.Bool(false), nil
		}
		if b.Op == "or" && lv {
			return ctxmodel.Bool(true), nil
		}
		rv, err := evalBool(b.R, env)
		if err != nil {
			return ctxmodel.Value{}, err
		}
		return ctxmodel.Bool(rv), nil
	}
	lv, err := b.L.Eval(env)
	if err != nil {
		return ctxmodel.Value{}, err
	}
	rv, err := b.R.Eval(env)
	if err != nil {
		return ctxmodel.Value{}, err
	}
	switch b.Op {
	case "==":
		return ctxmodel.Bool(lv.Equal(rv)), nil
	case "!=":
		return ctxmodel.Bool(!lv.Equal(rv)), nil
	case "<", "<=", ">", ">=":
		if lv.Kind != ctxmodel.KindNumber || rv.Kind != ctxmodel.KindNumber {
			return ctxmodel.Value{}, fmt.Errorf("policy: %s needs numbers, got %s and %s", b.Op, lv, rv)
		}
		switch b.Op {
		case "<":
			return ctxmodel.Bool(lv.Num < rv.Num), nil
		case "<=":
			return ctxmodel.Bool(lv.Num <= rv.Num), nil
		case ">":
			return ctxmodel.Bool(lv.Num > rv.Num), nil
		default:
			return ctxmodel.Bool(lv.Num >= rv.Num), nil
		}
	default:
		return ctxmodel.Value{}, fmt.Errorf("policy: unknown operator %q", b.Op)
	}
}

// String implements Expr.
func (b *Binary) String() string {
	return "(" + b.L.String() + " " + b.Op + " " + b.R.String() + ")"
}

// A Not negates a boolean expression.
type Not struct{ X Expr }

// Eval implements Expr.
func (n *Not) Eval(env *Env) (ctxmodel.Value, error) {
	v, err := evalBool(n.X, env)
	if err != nil {
		return ctxmodel.Value{}, err
	}
	return ctxmodel.Bool(!v), nil
}

// String implements Expr.
func (n *Not) String() string { return "not " + n.X.String() }

// evalBool evaluates an expression and requires a boolean result.
func evalBool(e Expr, env *Env) (bool, error) {
	v, err := e.Eval(env)
	if err != nil {
		return false, err
	}
	if v.Kind != ctxmodel.KindBool {
		return false, fmt.Errorf("policy: expression %s is not boolean (got %s)", e, v)
	}
	return v.Bool, nil
}

// Action is a reconfiguration/management instruction the engine emits for
// the middleware to execute.
type Action interface {
	isAction()
	String() string
}

// AlertAction raises a notification (emergency services, an administrator).
type AlertAction struct{ Message string }

func (AlertAction) isAction()        {}
func (a AlertAction) String() string { return fmt.Sprintf("alert %q", a.Message) }

// ConnectAction instructs the middleware to establish a channel between two
// components (third-party reconfiguration, Fig. 8).
type ConnectAction struct{ From, To string }

func (ConnectAction) isAction()        {}
func (a ConnectAction) String() string { return fmt.Sprintf("connect %q -> %q", a.From, a.To) }

// DisconnectAction tears a channel down.
type DisconnectAction struct{ From, To string }

func (DisconnectAction) isAction() {}
func (a DisconnectAction) String() string {
	return fmt.Sprintf("disconnect %q -> %q", a.From, a.To)
}

// SetContextAction changes a component's IFC security context.
type SetContextAction struct {
	Target string
	Ctx    ifc.SecurityContext
}

func (SetContextAction) isAction() {}
func (a SetContextAction) String() string {
	return fmt.Sprintf("setcontext %q %s", a.Target, a.Ctx)
}

// GrantAction passes IFC privileges to a component.
type GrantAction struct {
	Target string
	Privs  ifc.Privileges
}

func (GrantAction) isAction()        {}
func (a GrantAction) String() string { return fmt.Sprintf("grant %q %s", a.Target, a.Privs) }

// SetCtxAction updates a context attribute (feedback into the context
// store, e.g. set emergency = true).
type SetCtxAction struct {
	Key   string
	Value ctxmodel.Value
}

func (SetCtxAction) isAction()        {}
func (a SetCtxAction) String() string { return fmt.Sprintf("set %s = %s", a.Key, a.Value) }

// BreakGlassAction opens an audited override window for the given duration;
// temporary actions executed during the window are reverted at expiry.
type BreakGlassAction struct{ For time.Duration }

func (BreakGlassAction) isAction()        {}
func (a BreakGlassAction) String() string { return fmt.Sprintf("breakglass %s", a.For) }

// QuarantineAction isolates a rogue component: the middleware must cease
// all its interactions (Section 5.2: "preventing a rogue 'thing' from
// causing more damage").
type QuarantineAction struct{ Target string }

func (QuarantineAction) isAction()        {}
func (a QuarantineAction) String() string { return fmt.Sprintf("quarantine %q", a.Target) }

// ActuateAction issues an actuation command to a device (Concern 2), e.g.
// changing a sensor's sampling interval in an emergency (Fig. 7).
type ActuateAction struct {
	Device  string
	Command string
	Value   float64
}

func (ActuateAction) isAction() {}
func (a ActuateAction) String() string {
	return fmt.Sprintf("actuate %q %q %g", a.Device, a.Command, a.Value)
}

// Env is the evaluation environment: a context snapshot plus the triggering
// event's fields.
type Env struct {
	Ctx   ctxmodel.Snapshot
	Event EventView
}

// EventView exposes the triggering detection to expressions.
type EventView struct {
	Pattern string
	Source  string
	Value   float64
	Present bool
}

// lookup resolves a path against the environment.
func (e *Env) lookup(p *Path) (ctxmodel.Value, error) {
	switch p.Root {
	case "ctx":
		v, ok := e.Ctx.Get(p.Field)
		if !ok {
			return ctxmodel.Value{}, fmt.Errorf("policy: context attribute %q not set", p.Field)
		}
		return v, nil
	case "event":
		if !e.Event.Present {
			return ctxmodel.Value{}, fmt.Errorf("policy: no event in scope for event.%s", p.Field)
		}
		switch p.Field {
		case "pattern":
			return ctxmodel.String(e.Event.Pattern), nil
		case "source":
			return ctxmodel.String(e.Event.Source), nil
		case "value":
			return ctxmodel.Number(e.Event.Value), nil
		default:
			return ctxmodel.Value{}, fmt.Errorf("policy: unknown event field %q", p.Field)
		}
	default:
		return ctxmodel.Value{}, fmt.Errorf("policy: unknown path root %q", p.Root)
	}
}

// String renders a rule back to (normalised) source.
func (r *Rule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rule %q priority %d { on %s", r.Name, r.Priority, r.Trigger.Kind)
	switch r.Trigger.Kind {
	case TriggerEvent:
		fmt.Fprintf(&b, " %q", r.Trigger.Pattern)
	case TriggerContext:
		fmt.Fprintf(&b, " %s", r.Trigger.Key)
	case TriggerTimer:
		fmt.Fprintf(&b, " %s", r.Trigger.Every)
	}
	if r.When != nil {
		fmt.Fprintf(&b, " when %s", r.When)
	}
	b.WriteString(" do ")
	for i, a := range r.Do {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(a.String())
	}
	b.WriteString(" }")
	return b.String()
}
