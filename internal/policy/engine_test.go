package policy

import (
	"errors"
	"testing"
	"time"

	"lciot/internal/cep"
	"lciot/internal/ctxmodel"
)

// testHarness bundles an engine with recorded actions and conflicts and a
// controllable clock.
type testHarness struct {
	engine    *Engine
	store     *ctxmodel.Store
	actions   *[]Action
	conflicts *[]Conflict
	now       *time.Time
}

func newHarness(t *testing.T, src string) *testHarness {
	t.Helper()
	now := time.Unix(10000, 0)
	var actions []Action
	var conflicts []Conflict
	store := ctxmodel.NewStore(func() time.Time { return now })
	e := NewEngine(store,
		func(a Action) error { actions = append(actions, a); return nil },
		WithConflictHandler(func(c Conflict) { conflicts = append(conflicts, c) }),
		WithEngineClock(func() time.Time { return now }),
	)
	e.Load(MustParse(src))
	return &testHarness{engine: e, store: store, actions: &actions, conflicts: &conflicts, now: &now}
}

func detection(pattern string, value float64) cep.Detection {
	return cep.Detection{
		Pattern: pattern,
		Value:   value,
		Events:  []cep.Event{{Source: "ann-sensor", Value: value}},
	}
}

func TestEngineFiresMatchingRule(t *testing.T) {
	h := newHarness(t, `
rule "emergency" {
    on event "tachycardia"
    when ctx.location == "home"
    do alert "help"; actuate "ann-sensor" "sample-interval" 1
}`)
	h.store.Set("location", ctxmodel.String("home"))

	if errs := h.engine.HandleDetection(detection("tachycardia", 150)); len(errs) != 0 {
		t.Fatal(errs)
	}
	if len(*h.actions) != 2 {
		t.Fatalf("actions = %v", *h.actions)
	}
	if a := (*h.actions)[1].(ActuateAction); a.Device != "ann-sensor" || a.Value != 1 {
		t.Fatalf("actuate = %+v", a)
	}
	if h.engine.FiredCount("emergency") != 1 {
		t.Fatal("fired count not recorded")
	}
}

func TestEngineGuardBlocksRule(t *testing.T) {
	h := newHarness(t, `
rule "emergency" {
    on event "tachycardia"
    when ctx.location == "home"
    do alert "help"
}`)
	h.store.Set("location", ctxmodel.String("work"))
	if errs := h.engine.HandleDetection(detection("tachycardia", 150)); len(errs) != 0 {
		t.Fatal(errs)
	}
	if len(*h.actions) != 0 {
		t.Fatalf("guarded rule fired: %v", *h.actions)
	}
}

func TestEnginePatternMismatchIgnored(t *testing.T) {
	h := newHarness(t, `rule "r" { on event "a" do alert "x" }`)
	h.engine.HandleDetection(detection("b", 0))
	if len(*h.actions) != 0 {
		t.Fatal("fired on wrong pattern")
	}
}

func TestEngineEventFieldsInGuard(t *testing.T) {
	h := newHarness(t, `
rule "r" {
    on event "hr"
    when event.value > 100 and event.source == "ann-sensor"
    do alert "high"
}`)
	h.engine.HandleDetection(detection("hr", 90))
	if len(*h.actions) != 0 {
		t.Fatal("fired below threshold")
	}
	h.engine.HandleDetection(detection("hr", 120))
	if len(*h.actions) != 1 {
		t.Fatal("did not fire above threshold")
	}
}

func TestEngineGuardErrorReported(t *testing.T) {
	h := newHarness(t, `rule "r" { on event "e" when ctx.missing == 1 do alert "x" }`)
	errs := h.engine.HandleDetection(detection("e", 0))
	if len(errs) != 1 {
		t.Fatalf("errs = %v", errs)
	}
	if errs[0].Rule != "r" || errs[0].Action != nil {
		t.Fatalf("error = %+v", errs[0])
	}
	var target Error
	if !errors.As(error(errs[0]), &target) {
		t.Fatal("Error type lost")
	}
}

func TestEngineExecErrorReported(t *testing.T) {
	now := time.Unix(1, 0)
	boom := errors.New("executor down")
	e := NewEngine(nil, func(Action) error { return boom },
		WithEngineClock(func() time.Time { return now }))
	e.Load(MustParse(`rule "r" { on event "e" do alert "x" }`))
	errs := e.HandleDetection(detection("e", 0))
	if len(errs) != 1 || !errors.Is(errs[0], boom) {
		t.Fatalf("errs = %v", errs)
	}
}

func TestEngineContextTrigger(t *testing.T) {
	h := newHarness(t, `
rule "shift-end" {
    on context on-duty
    when not ctx.on-duty
    do disconnect "nurse-app" -> "patient-db"
}`)
	h.store.Set("on-duty", ctxmodel.Bool(false))
	errs := h.engine.HandleContextChange(ctxmodel.Change{Key: "on-duty", New: ctxmodel.Bool(false)})
	if len(errs) != 0 {
		t.Fatal(errs)
	}
	if len(*h.actions) != 1 {
		t.Fatalf("actions = %v", *h.actions)
	}
	if _, ok := (*h.actions)[0].(DisconnectAction); !ok {
		t.Fatalf("action = %+v", (*h.actions)[0])
	}
}

func TestEngineTimerTrigger(t *testing.T) {
	h := newHarness(t, `rule "heartbeat" { on timer 5m do alert "still here" }`)

	h.engine.Tick()
	if len(*h.actions) != 1 {
		t.Fatalf("first tick actions = %d", len(*h.actions))
	}
	// Before the period elapses, no re-fire.
	*h.now = h.now.Add(2 * time.Minute)
	h.engine.Tick()
	if len(*h.actions) != 1 {
		t.Fatal("timer re-fired early")
	}
	*h.now = h.now.Add(4 * time.Minute)
	h.engine.Tick()
	if len(*h.actions) != 2 {
		t.Fatal("timer did not re-fire after period")
	}
}

func TestEnginePriorityConflictResolution(t *testing.T) {
	h := newHarness(t, `
rule "lockdown" priority 1 {
    on event "breach"
    do disconnect "db" -> "analytics"
}
rule "emergency-open" priority 10 {
    on event "breach"
    do connect "db" -> "analytics"
}`)
	h.engine.HandleDetection(detection("breach", 0))

	// The higher-priority rule wins; exactly one action executed.
	if len(*h.actions) != 1 {
		t.Fatalf("actions = %v", *h.actions)
	}
	if _, ok := (*h.actions)[0].(ConnectAction); !ok {
		t.Fatalf("winner = %+v", (*h.actions)[0])
	}
	if len(*h.conflicts) != 1 {
		t.Fatalf("conflicts = %v", *h.conflicts)
	}
	c := (*h.conflicts)[0]
	if c.Winner != "emergency-open" || c.Loser != "lockdown" {
		t.Fatalf("conflict = %+v", c)
	}
	if c.String() == "" {
		t.Fatal("conflict must render")
	}
}

func TestEngineEqualPriorityTieBreaksByName(t *testing.T) {
	h := newHarness(t, `
rule "b-rule" { on event "e" do set mode = "b" }
rule "a-rule" { on event "e" do set mode = "a" }
`)
	h.engine.HandleDetection(detection("e", 0))
	if len(*h.actions) != 1 {
		t.Fatalf("actions = %v", *h.actions)
	}
	if a := (*h.actions)[0].(SetCtxAction); a.Value.Str != "a" {
		t.Fatalf("tie-break winner = %v", a)
	}
	if len(*h.conflicts) != 1 {
		t.Fatalf("conflicts = %d", len(*h.conflicts))
	}
}

func TestEngineIdenticalActionsDeduplicated(t *testing.T) {
	h := newHarness(t, `
rule "r1" { on event "e" do connect "a" -> "b" }
rule "r2" { on event "e" do connect "a" -> "b" }
`)
	h.engine.HandleDetection(detection("e", 0))
	if len(*h.actions) != 1 {
		t.Fatalf("duplicate executed: %v", *h.actions)
	}
	// Identical claims are not conflicts.
	if len(*h.conflicts) != 0 {
		t.Fatalf("spurious conflict: %v", *h.conflicts)
	}
}

func TestEngineSetFeedsContextStore(t *testing.T) {
	h := newHarness(t, `
rule "first" { on event "e" when not ctx.emergency do set emergency = true; alert "once" }
`)
	h.store.Set("emergency", ctxmodel.Bool(false))
	h.engine.HandleDetection(detection("e", 0))
	h.engine.HandleDetection(detection("e", 0)) // guard now false

	alerts := 0
	for _, a := range *h.actions {
		if _, ok := a.(AlertAction); ok {
			alerts++
		}
	}
	if alerts != 1 {
		t.Fatalf("alerts = %d, want 1 (set must update context)", alerts)
	}
	v, _ := h.store.Get("emergency")
	if !v.Bool {
		t.Fatal("store not updated")
	}
}

func TestEngineBreakGlassLifecycle(t *testing.T) {
	h := newHarness(t, `
rule "emergency" {
    on event "crisis"
    do breakglass 30m; connect "sensors" -> "emergency-team"
}`)
	h.engine.HandleDetection(detection("crisis", 0))

	if rule, active := h.engine.OverrideActive(); !active || rule != "emergency" {
		t.Fatalf("override = %q, %v", rule, active)
	}
	if len(*h.actions) != 1 {
		t.Fatalf("actions = %v", *h.actions)
	}

	// Window still open 20 minutes later.
	*h.now = h.now.Add(20 * time.Minute)
	h.engine.Tick()
	if _, active := h.engine.OverrideActive(); !active {
		t.Fatal("override closed early")
	}

	// After expiry the connection is reverted.
	*h.now = h.now.Add(11 * time.Minute)
	h.engine.Tick()
	if _, active := h.engine.OverrideActive(); active {
		t.Fatal("override still open")
	}
	last := (*h.actions)[len(*h.actions)-1]
	d, ok := last.(DisconnectAction)
	if !ok || d.From != "sensors" || d.To != "emergency-team" {
		t.Fatalf("revert action = %+v", last)
	}
}

func TestEngineBreakGlassOrderIndependent(t *testing.T) {
	// breakglass listed *after* connect must still capture the revert.
	h := newHarness(t, `
rule "emergency" {
    on event "crisis"
    do connect "a" -> "b"; breakglass 5m
}`)
	h.engine.HandleDetection(detection("crisis", 0))
	*h.now = h.now.Add(6 * time.Minute)
	h.engine.Tick()
	last := (*h.actions)[len(*h.actions)-1]
	if _, ok := last.(DisconnectAction); !ok {
		t.Fatalf("revert missing, actions = %v", *h.actions)
	}
}

func TestEngineAddRulesAndNames(t *testing.T) {
	h := newHarness(t, `rule "low" priority 1 { on event "e" do alert "l" }`)
	h.engine.AddRules(MustParse(`rule "high" priority 9 { on event "e" do alert "h" }`))
	names := h.engine.RuleNames()
	if len(names) != 2 || names[0] != "high" || names[1] != "low" {
		t.Fatalf("names = %v", names)
	}
}

func TestEngineNilExecAndStore(t *testing.T) {
	e := NewEngine(nil, nil)
	e.Load(MustParse(`rule "r" { on event "e" do alert "x" }`))
	if errs := e.HandleDetection(detection("e", 0)); len(errs) != 0 {
		t.Fatal(errs)
	}
}

func TestTriggerKindString(t *testing.T) {
	if TriggerEvent.String() != "event" || TriggerContext.String() != "context" || TriggerTimer.String() != "timer" {
		t.Fatal("trigger kind strings")
	}
	if TriggerKind(9).String() != "TriggerKind(9)" {
		t.Fatal("unknown trigger kind")
	}
}

func TestActionStrings(t *testing.T) {
	actions := []Action{
		AlertAction{Message: "m"},
		ConnectAction{From: "a", To: "b"},
		DisconnectAction{From: "a", To: "b"},
		SetCtxAction{Key: "k", Value: ctxmodel.Bool(true)},
		BreakGlassAction{For: time.Minute},
		QuarantineAction{Target: "t"},
		ActuateAction{Device: "d", Command: "c", Value: 2},
	}
	for _, a := range actions {
		if a.String() == "" {
			t.Errorf("%T renders empty", a)
		}
	}
}
