package policy

import (
	"strings"
	"testing"
	"time"

	"lciot/internal/cep"
	"lciot/internal/ctxmodel"
	"lciot/internal/ifc"
)

func TestSetContextActionString(t *testing.T) {
	a := SetContextAction{
		Target: "sanitiser",
		Ctx:    ifc.MustContext([]ifc.Tag{"medical"}, []ifc.Tag{"hosp-dev"}),
	}
	want := `setcontext "sanitiser" S={medical} I={hosp-dev}`
	if a.String() != want {
		t.Fatalf("String = %q, want %q", a.String(), want)
	}
	g := GrantAction{Target: "t", Privs: ifc.Privileges{RemoveSecrecy: ifc.MustLabel("x")}}
	if !strings.Contains(g.String(), "S-{x}") {
		t.Fatalf("grant String = %q", g.String())
	}
}

func TestResourceOfCoversAllActions(t *testing.T) {
	conflicting := []Action{
		ConnectAction{From: "a", To: "b"},
		DisconnectAction{From: "a", To: "b"},
		SetContextAction{Target: "t"},
		SetCtxAction{Key: "k", Value: ctxmodel.Bool(true)},
		QuarantineAction{Target: "t"},
		ActuateAction{Device: "d", Command: "c", Value: 1},
	}
	for _, a := range conflicting {
		if ResourceOf(a) == "" {
			t.Errorf("%T has no resource", a)
		}
	}
	// Connect and disconnect of the same channel contend for one resource.
	if ResourceOf(conflicting[0]) != ResourceOf(conflicting[1]) {
		t.Error("connect/disconnect resources differ")
	}
	nonConflicting := []Action{
		AlertAction{Message: "m"},
		BreakGlassAction{For: time.Minute},
	}
	for _, a := range nonConflicting {
		if ResourceOf(a) != "" {
			t.Errorf("%T should have no resource", a)
		}
	}
}

func TestErrorRendering(t *testing.T) {
	guardErr := Error{Rule: "r", Err: errFromGuard(t)}
	if !strings.Contains(guardErr.Error(), `rule "r"`) {
		t.Fatalf("guard error = %q", guardErr.Error())
	}
	actionErr := Error{Rule: "r", Action: AlertAction{Message: "m"}, Err: errFromGuard(t)}
	if !strings.Contains(actionErr.Error(), "alert") {
		t.Fatalf("action error = %q", actionErr.Error())
	}
}

func errFromGuard(t *testing.T) error {
	t.Helper()
	set := MustParse(`rule "r" { on event "e" when ctx.missing == 1 do alert "x" }`)
	env := &Env{Ctx: ctxmodel.MakeSnapshot(nil)}
	_, err := set.Rules[0].When.Eval(env)
	if err == nil {
		t.Fatal("expected guard error")
	}
	return err
}

func TestRuleStringTriggerVariants(t *testing.T) {
	set := MustParse(`
rule "c" { on context key do alert "x" }
rule "t" { on timer 5m do alert "x" }
`)
	if !strings.Contains(set.Rules[0].String(), "on context key") {
		t.Fatalf("context rule = %s", set.Rules[0])
	}
	if !strings.Contains(set.Rules[1].String(), "on timer 5m") {
		t.Fatalf("timer rule = %s", set.Rules[1])
	}
}

func TestParseSetLiteralVariants(t *testing.T) {
	set := MustParse(`
rule "r" { on event "e" do
    set s = "text";
    set n = 3.5;
    set d = 90s;
    set b = false
}`)
	do := set.Rules[0].Do
	if v := do[0].(SetCtxAction).Value; v.Str != "text" {
		t.Fatalf("string literal = %v", v)
	}
	if v := do[1].(SetCtxAction).Value; v.Num != 3.5 {
		t.Fatalf("number literal = %v", v)
	}
	if v := do[2].(SetCtxAction).Value; v.Num != 90 {
		t.Fatalf("duration literal = %v (want seconds)", v)
	}
	if v := do[3].(SetCtxAction).Value; v.Kind != ctxmodel.KindBool || v.Bool {
		t.Fatalf("bool literal = %v", v)
	}
}

func TestParseLabelSpecErrors(t *testing.T) {
	cases := []string{
		`rule "r" { on event "e" do setcontext "t" X = {} I = {} }`,
		`rule "r" { on event "e" do setcontext "t" S {} I = {} }`,
		`rule "r" { on event "e" do setcontext "t" S = {} J = {} }`,
		`rule "r" { on event "e" do setcontext "t" S = {3} I = {} }`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestEventSourceEmptyDetection(t *testing.T) {
	// Detections with no contributing events (absence patterns) expose an
	// empty source rather than panicking.
	var fired []Action
	e := NewEngine(ctxmodel.NewStore(nil), func(a Action) error {
		fired = append(fired, a)
		return nil
	})
	e.Load(MustParse(`rule "r" { on event "silence" when event.source == "" do alert "x" }`))
	if errs := e.HandleDetection(cep.Detection{Pattern: "silence"}); len(errs) != 0 {
		t.Fatal(errs)
	}
	if len(fired) != 1 {
		t.Fatalf("fired = %v", fired)
	}
}
