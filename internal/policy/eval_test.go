package policy

import (
	"strings"
	"testing"

	"lciot/internal/ctxmodel"
)

// evalGuard parses a guard expression (wrapped in a throwaway rule) and
// evaluates it against the environment.
func evalGuard(t *testing.T, expr string, env *Env) (bool, error) {
	t.Helper()
	set, err := Parse(`rule "r" { on event "e" when ` + expr + ` do alert "x" }`)
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	v, err := set.Rules[0].When.Eval(env)
	if err != nil {
		return false, err
	}
	if v.Kind != ctxmodel.KindBool {
		t.Fatalf("%q evaluated to non-boolean %v", expr, v)
	}
	return v.Bool, nil
}

func testEnv() *Env {
	return &Env{
		Ctx: ctxmodel.MakeSnapshot(map[string]ctxmodel.Value{
			"location":   ctxmodel.String("home"),
			"heart-rate": ctxmodel.Number(72),
			"emergency":  ctxmodel.Bool(false),
		}),
		Event: EventView{Pattern: "hr", Source: "ann-sensor", Value: 130, Present: true},
	}
}

func TestExpressionEvaluationTable(t *testing.T) {
	tests := []struct {
		expr string
		want bool
	}{
		{`ctx.location == "home"`, true},
		{`ctx.location != "home"`, false},
		{`ctx.heart-rate > 70`, true},
		{`ctx.heart-rate >= 72`, true},
		{`ctx.heart-rate < 72`, false},
		{`ctx.heart-rate <= 71`, false},
		{`not ctx.emergency`, true},
		{`ctx.emergency == false`, true},
		{`event.value > 100`, true},
		{`event.source == "ann-sensor"`, true},
		{`event.pattern == "hr"`, true},
		{`ctx.location == "home" and event.value > 100`, true},
		{`ctx.location == "work" or event.value > 100`, true},
		{`ctx.location == "work" and event.value > 100`, false},
		{`not (ctx.location == "work" or ctx.emergency)`, true},
		{`true`, true},
		{`false or true`, true},
		{`1 == 1`, true},
		{`"a" != "b"`, true},
		// Mixed-type equality is false, not an error.
		{`ctx.heart-rate == "72"`, false},
	}
	env := testEnv()
	for _, tt := range tests {
		t.Run(tt.expr, func(t *testing.T) {
			got, err := evalGuard(t, tt.expr, env)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Fatalf("%q = %v, want %v", tt.expr, got, tt.want)
			}
		})
	}
}

func TestExpressionErrors(t *testing.T) {
	env := testEnv()
	tests := []struct {
		expr     string
		wantFrag string
	}{
		{`ctx.unknown == 1`, "not set"},
		{`event.unknown == 1`, "unknown event field"},
		{`ctx.location > 1`, "needs numbers"},
		{`not ctx.location`, "not boolean"},
		{`ctx.location and true`, "not boolean"},
	}
	for _, tt := range tests {
		t.Run(tt.expr, func(t *testing.T) {
			_, err := evalGuard(t, tt.expr, env)
			if err == nil || !strings.Contains(err.Error(), tt.wantFrag) {
				t.Fatalf("error = %v, want fragment %q", err, tt.wantFrag)
			}
		})
	}
}

func TestEventAccessWithoutEvent(t *testing.T) {
	env := &Env{Ctx: ctxmodel.MakeSnapshot(nil)}
	_, err := evalGuard(t, `event.value > 1`, env)
	if err == nil || !strings.Contains(err.Error(), "no event in scope") {
		t.Fatalf("error = %v", err)
	}
}

func TestShortCircuitPreventsErrors(t *testing.T) {
	env := testEnv()
	// The right operand references a missing attribute, but short-circuit
	// evaluation must never reach it.
	got, err := evalGuard(t, `false and ctx.missing == 1`, env)
	if err != nil || got {
		t.Fatalf("and short-circuit: %v, %v", got, err)
	}
	got, err = evalGuard(t, `true or ctx.missing == 1`, env)
	if err != nil || !got {
		t.Fatalf("or short-circuit: %v, %v", got, err)
	}
}

func TestDurationLiteralComparesAsSeconds(t *testing.T) {
	env := &Env{Ctx: ctxmodel.MakeSnapshot(map[string]ctxmodel.Value{
		"idle-seconds": ctxmodel.Number(3600),
	})}
	got, err := evalGuard(t, `ctx.idle-seconds >= 30m`, env)
	if err != nil || !got {
		t.Fatalf("duration compare: %v, %v", got, err)
	}
}
