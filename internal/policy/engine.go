package policy

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lciot/internal/cep"
	"lciot/internal/ctxmodel"
	"lciot/internal/lanehash"
)

// A Conflict records two rules prescribing incompatible actions for the
// same resource in the same evaluation round (Challenge 4). The engine
// resolves by priority — the loser's action is dropped — and reports the
// conflict so operators can repair the policy set.
type Conflict struct {
	Resource string // e.g. `channel "a"->"b"`, `context emergency`
	Winner   string // rule name
	Loser    string
	Dropped  Action
}

// String implements fmt.Stringer.
func (c Conflict) String() string {
	return fmt.Sprintf("conflict on %s: rule %q overrides %q (dropped: %s)",
		c.Resource, c.Winner, c.Loser, c.Dropped)
}

// An Override is an active break-glass window.
type Override struct {
	Rule  string
	Until time.Time
	// reverts are executed when the window closes.
	reverts []Action
}

// Engine evaluates a PolicySet against detections, context changes and
// timers, and emits actions to an executor. It is safe for concurrent
// use; with dispatch lanes configured (WithDispatchLanes) the dispatch
// path is lock-free end to end, so per-shard dispatcher goroutines
// evaluate in parallel without serializing on the engine.
type Engine struct {
	exec       func(Action) error
	onConflict func(Conflict)
	now        func() time.Time

	mu    sync.Mutex
	rules []*Rule // sorted by descending priority, then name
	// dispatch is the immutable trigger index, swapped wholesale by Load:
	// rules bucketed by what fires them, each bucket in evaluation
	// (priority) order, the buckets partitioned across lanes by the shared
	// FNV-1a trigger-key hash (internal/lanehash). Dispatching a detection
	// or context change costs one atomic load, one lane-map lookup and
	// work proportional to the rules that can match — no lock, however
	// many goroutines dispatch concurrently.
	dispatch atomic.Pointer[dispatchIndex]
	// lanes is the configured partition width (>= 1), fixed at build time.
	lanes int
	// laneFirings counts rule firings per dispatch lane (lifetime, one
	// uncontended atomic add per detection round). Sized to lanes at
	// construction and never reallocated, so it survives policy reloads.
	laneFirings []atomic.Uint64
	store       *ctxmodel.Store
	override    *Override
	// overrideOn mirrors "override != nil" so the dispatch path can skip
	// the engine lock when no break-glass window has ever been opened.
	overrideOn atomic.Bool
}

// A dispatchIndex is one immutable generation of the trigger index.
// Every trigger key (event pattern name, context attribute key) maps to
// exactly one lane, so partitioning never splits a bucket: a bucket is
// evaluated whole, in priority order, by whichever goroutine dispatches
// its trigger. Timer rules carry no dispatch key — they are the
// unpartitionable residue, evaluated by Tick on the maintenance cadence
// rather than on the dispatch path.
type dispatchIndex struct {
	lanes     int
	byPattern []map[string][]*Rule // TriggerEvent rules by pattern name, per lane
	byKey     []map[string][]*Rule // TriggerContext rules by attribute key, per lane
	timers    []*Rule              // TriggerTimer rules
	byName    map[string]*Rule     // observability lookups (FiredCount)
}

// patternBucket returns the evaluation-ordered rules triggering on a
// detection pattern.
func (ix *dispatchIndex) patternBucket(pattern string) []*Rule {
	return ix.byPattern[lanehash.Index(pattern, ix.lanes)][pattern]
}

// keyBucket returns the evaluation-ordered rules triggering on a context
// attribute key.
func (ix *dispatchIndex) keyBucket(key string) []*Rule {
	return ix.byKey[lanehash.Index(key, ix.lanes)][key]
}

// EngineOption configures an Engine.
type EngineOption func(*Engine)

// WithConflictHandler installs a conflict observer.
func WithConflictHandler(fn func(Conflict)) EngineOption {
	return func(e *Engine) { e.onConflict = fn }
}

// WithEngineClock overrides the engine clock (tests, simulation).
func WithEngineClock(now func() time.Time) EngineOption {
	return func(e *Engine) { e.now = now }
}

// WithDispatchLanes partitions the trigger index across n lanes (clamped
// to at least 1), aligned with the bus's shard count so each shard
// dispatcher mostly touches its own lane's maps. Evaluation semantics
// are identical at any width — a trigger key's whole bucket always lives
// on one lane — so the lane count is purely a cache-contention knob.
func WithDispatchLanes(n int) EngineOption {
	return func(e *Engine) {
		if n < 1 {
			n = 1
		}
		e.lanes = n
	}
}

// NewEngine builds an engine over the given context store, delivering
// actions to exec. A nil exec discards actions (useful for dry runs: the
// conflict handler still sees everything).
func NewEngine(store *ctxmodel.Store, exec func(Action) error, opts ...EngineOption) *Engine {
	if exec == nil {
		exec = func(Action) error { return nil }
	}
	e := &Engine{
		exec:  exec,
		now:   time.Now,
		store: store,
		lanes: 1,
	}
	for _, o := range opts {
		o(e)
	}
	e.laneFirings = make([]atomic.Uint64, e.lanes)
	e.dispatch.Store(newDispatchIndex(nil, e.lanes))
	return e
}

// LaneFirings returns per-dispatch-lane lifetime rule-firing counts (from
// detection dispatch; context and timer firings are not lane-attributed).
// Lock-free.
func (e *Engine) LaneFirings() []uint64 {
	out := make([]uint64, len(e.laneFirings))
	for i := range e.laneFirings {
		out[i] = e.laneFirings[i].Load()
	}
	return out
}

// newDispatchIndex builds an index generation from rules already in
// evaluation order, so every bucket inherits that order.
func newDispatchIndex(rules []*Rule, lanes int) *dispatchIndex {
	ix := &dispatchIndex{
		lanes:     lanes,
		byPattern: make([]map[string][]*Rule, lanes),
		byKey:     make([]map[string][]*Rule, lanes),
		byName:    make(map[string]*Rule, len(rules)),
	}
	for i := 0; i < lanes; i++ {
		ix.byPattern[i] = make(map[string][]*Rule)
		ix.byKey[i] = make(map[string][]*Rule)
	}
	for _, r := range rules {
		ix.byName[r.Name] = r
		switch r.Trigger.Kind {
		case TriggerEvent:
			m := ix.byPattern[lanehash.Index(r.Trigger.Pattern, lanes)]
			m[r.Trigger.Pattern] = append(m[r.Trigger.Pattern], r)
		case TriggerContext:
			m := ix.byKey[lanehash.Index(r.Trigger.Key, lanes)]
			m[r.Trigger.Key] = append(m[r.Trigger.Key], r)
		case TriggerTimer:
			ix.timers = append(ix.timers, r)
		}
	}
	return ix
}

// Load installs a policy set, replacing any previous rules. Rules are
// ordered by descending priority; ties break by name for determinism. Load
// also rebuilds the trigger index as a fresh immutable generation and
// swaps it in atomically, so concurrent dispatchers never observe a
// half-built index; firing stats carry over by rule name, so reloading a
// policy set does not reset FiredCount.
func (e *Engine) Load(set *PolicySet) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rules = append([]*Rule(nil), set.Rules...)
	sort.SliceStable(e.rules, func(i, j int) bool {
		if e.rules[i].Priority != e.rules[j].Priority {
			return e.rules[i].Priority > e.rules[j].Priority
		}
		return e.rules[i].Name < e.rules[j].Name
	})
	prev := e.dispatch.Load()
	ix := newDispatchIndex(e.rules, e.lanes)
	if prev != nil {
		for name, r := range ix.byName {
			if old, ok := prev.byName[name]; ok && old != r {
				r.fired.Store(old.fired.Load())
				r.lastFiredNs.Store(old.lastFiredNs.Load())
			}
		}
	}
	e.dispatch.Store(ix)
}

// AddRules appends rules from another set, re-sorting.
func (e *Engine) AddRules(set *PolicySet) {
	e.mu.Lock()
	rules := append(e.rules, set.Rules...)
	e.mu.Unlock()
	e.Load(&PolicySet{Rules: rules})
}

// RuleNames returns loaded rule names in evaluation order.
func (e *Engine) RuleNames() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, len(e.rules))
	for i, r := range e.rules {
		out[i] = r.Name
	}
	return out
}

// FiredCount reports how often a rule has fired.
func (e *Engine) FiredCount(rule string) uint64 {
	if r, ok := e.dispatch.Load().byName[rule]; ok {
		return r.fired.Load()
	}
	return 0
}

// OverrideActive reports whether a break-glass window is currently open,
// and which rule opened it. The middleware consults this when an otherwise
// denied flow occurs: during an override it may permit the flow but must
// audit it as a break-glass event. The common no-override case is a
// single atomic load, so per-message checks on the dispatch path never
// contend on the engine lock.
func (e *Engine) OverrideActive() (string, bool) {
	if !e.overrideOn.Load() {
		return "", false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.override != nil && e.now().Before(e.override.Until) {
		return e.override.Rule, true
	}
	return "", false
}

// HandleDetection evaluates all rules triggered by the detection's pattern.
// The trigger index narrows the work to that pattern's bucket: 1000 loaded
// rules of which three trigger on the pattern cost three evaluations. The
// lookup is lock-free, so shard dispatchers on different lanes evaluate
// in parallel.
func (e *Engine) HandleDetection(d cep.Detection) []Error {
	bucket := e.dispatch.Load().patternBucket(d.Pattern)
	if len(bucket) == 0 {
		// The decision is trivially "no rules"; the stage edge still closes
		// here so decide→audit doesn't absorb the lookup (nil-safe).
		d.Stage.MarkDecide()
		return nil
	}
	env := &Env{
		Ctx: e.snapshot(),
		Event: EventView{
			Pattern: d.Pattern,
			Source:  eventSource(d),
			Value:   d.Value,
			Present: true,
		},
	}
	errs, fired := e.evaluate(bucket, nil, env)
	if fired > 0 {
		e.laneFirings[lanehash.Index(d.Pattern, e.lanes)].Add(uint64(fired))
	}
	d.Stage.MarkDecide()
	return errs
}

// eventSource picks the source of the last contributing event.
func eventSource(d cep.Detection) string {
	if len(d.Events) == 0 {
		return ""
	}
	return d.Events[len(d.Events)-1].Source
}

// HandleContextChange evaluates rules triggered by the changed attribute,
// found through the trigger index rather than a scan over every rule. As
// with HandleDetection, the lookup is lock-free.
func (e *Engine) HandleContextChange(ch ctxmodel.Change) []Error {
	bucket := e.dispatch.Load().keyBucket(ch.Key)
	if len(bucket) == 0 {
		return nil
	}
	env := &Env{Ctx: e.snapshot()}
	errs, _ := e.evaluate(bucket, nil, env)
	return errs
}

// Tick drives timer rules and break-glass expiry; call it periodically (the
// middleware does) or manually in simulations.
func (e *Engine) Tick() []Error {
	now := e.now()

	// Expire the override first so reverts land before new work.
	var reverts []Action
	if e.overrideOn.Load() {
		e.mu.Lock()
		if e.override != nil && !now.Before(e.override.Until) {
			reverts = e.override.reverts
			e.override = nil
			e.overrideOn.Store(false)
		}
		e.mu.Unlock()
	}
	var errs []Error
	for _, a := range reverts {
		if err := e.exec(a); err != nil {
			errs = append(errs, Error{Rule: "break-glass-revert", Action: a, Err: err})
		}
	}

	timers := e.dispatch.Load().timers
	if len(timers) == 0 {
		return errs
	}
	env := &Env{Ctx: e.snapshot()}
	timerErrs, _ := e.evaluate(timers, func(r *Rule) bool {
		// "Never fired" is fired == 0, not a timestamp sentinel, so
		// simulated clocks sitting at the epoch still fire on the first
		// tick.
		return r.fired.Load() == 0 ||
			now.UnixNano()-r.lastFiredNs.Load() >= int64(r.Trigger.Every)
	}, env)
	return append(errs, timerErrs...)
}

// An Error reports a failed guard evaluation or action execution.
type Error struct {
	Rule   string
	Action Action // nil for guard errors
	Err    error
}

// Error implements error.
func (e Error) Error() string {
	if e.Action != nil {
		return fmt.Sprintf("policy: rule %q action %s: %v", e.Rule, e.Action, e.Err)
	}
	return fmt.Sprintf("policy: rule %q: %v", e.Rule, e.Err)
}

// Unwrap exposes the underlying error.
func (e Error) Unwrap() error { return e.Err }

func (e *Engine) snapshot() ctxmodel.Snapshot {
	if e.store == nil {
		return ctxmodel.MakeSnapshot(nil)
	}
	return e.store.Snapshot()
}

// evaluate runs the rules of one trigger bucket in priority order, collects
// their actions, resolves conflicts, then executes the surviving actions in
// order, reporting any errors plus how many rules fired (for lane-load
// accounting). The optional filter prunes rules before guard evaluation
// (timer cadence); nil means every rule in the bucket is considered.
// Buckets are immutable after Load, so iterating without the engine lock
// is safe.
func (e *Engine) evaluate(rules []*Rule, filter func(*Rule) bool, env *Env) ([]Error, int) {
	now := e.now()
	var errs []Error
	fired := 0

	type pending struct {
		rule   *Rule
		action Action
	}
	var selected []pending

	for _, r := range rules {
		if filter != nil && !filter(r) {
			continue
		}
		if r.When != nil {
			ok, err := evalBool(r.When, env)
			if err != nil {
				errs = append(errs, Error{Rule: r.Name, Err: err})
				continue
			}
			if !ok {
				continue
			}
		}
		r.lastFiredNs.Store(now.UnixNano())
		r.fired.Add(1)
		fired++
		for _, a := range r.Do {
			selected = append(selected, pending{rule: r, action: a})
		}
	}

	// Conflict resolution: first claim on a resource wins (rules are in
	// priority order), later conflicting claims are dropped and reported.
	claimed := make(map[string]pending)
	var final []pending
	for _, p := range selected {
		res, val := resourceOf(p.action)
		if res == "" {
			final = append(final, p)
			continue
		}
		if prior, ok := claimed[res]; ok {
			_, priorVal := resourceOf(prior.action)
			if priorVal != val {
				c := Conflict{Resource: res, Winner: prior.rule.Name, Loser: p.rule.Name, Dropped: p.action}
				if e.onConflict != nil {
					e.onConflict(c)
				}
			}
			continue // identical duplicate: silently deduplicate
		}
		claimed[res] = p
		final = append(final, p)
	}

	// Open break-glass windows first, regardless of their position in the
	// action list, so that temporary actions in the same round are recorded
	// for revert.
	for _, p := range final {
		if bg, ok := p.action.(BreakGlassAction); ok {
			e.openOverride(p.rule.Name, bg.For)
		}
	}
	for _, p := range final {
		if _, ok := p.action.(BreakGlassAction); ok {
			continue
		}
		if err := e.exec(p.action); err != nil {
			errs = append(errs, Error{Rule: p.rule.Name, Action: p.action, Err: err})
			continue
		}
		e.recordRevert(p.action)
		e.applyContextEffects(p.action)
	}
	return errs, fired
}

// ResourceOf returns the resource an action contends for, or "" for
// actions that never conflict (alerts, break-glass). Tooling uses it to
// lint policy sets for potential conflicts without running them.
func ResourceOf(a Action) string {
	res, _ := resourceOf(a)
	return res
}

// resourceOf maps an action to the contested resource and the claimed
// value; actions with an empty resource never conflict (alerts).
func resourceOf(a Action) (resource, value string) {
	switch x := a.(type) {
	case ConnectAction:
		return fmt.Sprintf("channel %q->%q", x.From, x.To), "connect"
	case DisconnectAction:
		return fmt.Sprintf("channel %q->%q", x.From, x.To), "disconnect"
	case SetContextAction:
		return fmt.Sprintf("context-of %q", x.Target), x.Ctx.String()
	case SetCtxAction:
		return "attribute " + x.Key, x.Value.String()
	case QuarantineAction:
		return fmt.Sprintf("quarantine %q", x.Target), "quarantine"
	case ActuateAction:
		return fmt.Sprintf("actuator %q/%q", x.Device, x.Command), fmt.Sprintf("%g", x.Value)
	default:
		return "", ""
	}
}

// openOverride starts (or extends) a break-glass window.
func (e *Engine) openOverride(rule string, d time.Duration) {
	until := e.now().Add(d)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.override == nil || until.After(e.override.Until) {
		var reverts []Action
		if e.override != nil {
			reverts = e.override.reverts
		}
		e.override = &Override{Rule: rule, Until: until, reverts: reverts}
		e.overrideOn.Store(true)
	}
}

// recordRevert registers compensation for temporary actions executed during
// an open break-glass window: connections made under the override are torn
// down when it closes.
func (e *Engine) recordRevert(a Action) {
	if !e.overrideOn.Load() {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.override == nil || !e.now().Before(e.override.Until) {
		return
	}
	switch x := a.(type) {
	case ConnectAction:
		e.override.reverts = append(e.override.reverts, DisconnectAction{From: x.From, To: x.To})
	}
}

// applyContextEffects feeds "set" actions back into the context store so
// subsequent guards observe them, closing the paper's feedback loop.
func (e *Engine) applyContextEffects(a Action) {
	if e.store == nil {
		return
	}
	if x, ok := a.(SetCtxAction); ok {
		e.store.Set(x.Key, x.Value)
	}
}
