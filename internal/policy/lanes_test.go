package policy

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"lciot/internal/cep"
	"lciot/internal/ctxmodel"
)

// lanesPolicySrc builds a rule set spreading triggers over many pattern
// names and context keys, with a few multi-rule buckets.
func lanesPolicySrc(patterns int) string {
	var b strings.Builder
	for i := 0; i < patterns; i++ {
		fmt.Fprintf(&b, "rule \"r%d\" { on event \"p%d\"\n do alert \"a%d\" }\n", i, i, i)
	}
	// Two rules sharing one bucket, at different priorities.
	b.WriteString(`rule "hi" priority 10 { on event "shared" do alert "hi" }`)
	b.WriteString("\n")
	b.WriteString(`rule "lo" priority 1 { on event "shared" do alert "lo" }`)
	b.WriteString("\n")
	b.WriteString(`rule "ctx" { on context mode do alert "mode-changed" }`)
	b.WriteString("\n")
	return b.String()
}

// TestDispatchLanesEquivalence: the same detections through a 1-lane and
// an 8-lane engine produce identical actions, identical order within
// each trigger, and identical fired counts — lane width is invisible to
// semantics.
func TestDispatchLanesEquivalence(t *testing.T) {
	src := lanesPolicySrc(32)
	run := func(lanes int) ([]string, map[string]uint64) {
		var alerts []string
		store := ctxmodel.NewStore(nil)
		e := NewEngine(store, func(a Action) error {
			if al, ok := a.(AlertAction); ok {
				alerts = append(alerts, al.Message)
			}
			return nil
		}, WithDispatchLanes(lanes))
		e.Load(MustParse(src))
		for i := 0; i < 32; i++ {
			e.HandleDetection(cep.Detection{Pattern: fmt.Sprintf("p%d", i)})
		}
		e.HandleDetection(cep.Detection{Pattern: "shared"})
		e.HandleContextChange(ctxmodel.Change{Key: "mode"})
		counts := map[string]uint64{}
		for _, name := range e.RuleNames() {
			counts[name] = e.FiredCount(name)
		}
		return alerts, counts
	}

	a1, c1 := run(1)
	a8, c8 := run(8)
	if fmt.Sprint(a1) != fmt.Sprint(a8) {
		t.Fatalf("actions differ:\n1 lane:  %v\n8 lanes: %v", a1, a8)
	}
	if fmt.Sprint(c1) != fmt.Sprint(c8) {
		t.Fatalf("fired counts differ:\n1 lane:  %v\n8 lanes: %v", c1, c8)
	}
	// Priority order inside the shared bucket survived partitioning.
	joined := strings.Join(a1, ",")
	if !strings.Contains(joined, "hi,lo") {
		t.Fatalf("shared bucket order lost: %v", a1)
	}
}

// TestDispatchConcurrent hammers HandleDetection from many goroutines —
// under -race this is the lock-free dispatch proof — and checks no
// firing is lost (fired counts are atomic, actions are counted).
func TestDispatchConcurrent(t *testing.T) {
	const (
		gs  = 8
		per = 500
	)
	var mu sync.Mutex
	total := 0
	store := ctxmodel.NewStore(nil)
	e := NewEngine(store, func(a Action) error {
		mu.Lock()
		total++
		mu.Unlock()
		return nil
	}, WithDispatchLanes(4))
	e.Load(MustParse(lanesPolicySrc(gs)))

	var wg sync.WaitGroup
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			det := cep.Detection{Pattern: fmt.Sprintf("p%d", g)}
			for i := 0; i < per; i++ {
				if errs := e.HandleDetection(det); len(errs) != 0 {
					t.Errorf("dispatch errors: %v", errs)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	if total != gs*per {
		t.Fatalf("executed %d actions, want %d", total, gs*per)
	}
	for g := 0; g < gs; g++ {
		if got := e.FiredCount(fmt.Sprintf("r%d", g)); got != per {
			t.Fatalf("rule r%d fired %d, want %d", g, got, per)
		}
	}
}

// TestLoadCarriesFiredStats: reloading a policy set must not reset
// observability counters for rules that persist by name, and a reload
// concurrent with dispatch must never panic or lose the bucket.
func TestLoadCarriesFiredStats(t *testing.T) {
	store := ctxmodel.NewStore(nil)
	e := NewEngine(store, nil, WithDispatchLanes(4))
	src := `rule "keep" { on event "p" do alert "x" }`
	e.Load(MustParse(src))
	e.HandleDetection(cep.Detection{Pattern: "p"})
	e.HandleDetection(cep.Detection{Pattern: "p"})
	if got := e.FiredCount("keep"); got != 2 {
		t.Fatalf("fired = %d, want 2", got)
	}
	e.Load(MustParse(src + "\n" + `rule "new" { on event "q" do alert "y" }`))
	if got := e.FiredCount("keep"); got != 2 {
		t.Fatalf("fired count lost on reload: %d", got)
	}
	if got := e.FiredCount("new"); got != 0 {
		t.Fatalf("fresh rule fired = %d, want 0", got)
	}
}

// TestTimerNeverFiredAtEpoch: a simulated clock sitting at the Unix
// epoch must still run timer rules on the first tick ("never fired" is a
// counter, not a timestamp sentinel).
func TestTimerNeverFiredAtEpoch(t *testing.T) {
	now := time.Unix(0, 0)
	var alerts int
	store := ctxmodel.NewStore(func() time.Time { return now })
	e := NewEngine(store, func(a Action) error { alerts++; return nil },
		WithEngineClock(func() time.Time { return now }),
	)
	e.Load(MustParse(`rule "beat" { on timer 10s do alert "tick" }`))
	e.Tick()
	if alerts != 1 {
		t.Fatalf("timer at epoch fired %d times, want 1", alerts)
	}
	e.Tick() // same instant: cadence not yet elapsed
	if alerts != 1 {
		t.Fatalf("timer re-fired within cadence: %d", alerts)
	}
	now = now.Add(10 * time.Second)
	e.Tick()
	if alerts != 2 {
		t.Fatalf("timer missed cadence: %d", alerts)
	}
}
