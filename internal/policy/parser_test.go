package policy

import (
	"strings"
	"testing"
	"time"

	"lciot/internal/ifc"
)

func TestParseFullRule(t *testing.T) {
	src := `
# Emergency response for the Fig. 7 home-monitoring system.
rule "emergency-response" priority 10 {
    on event "tachycardia"
    when ctx.location == "home" and not ctx.emergency
    do
        set emergency = true;
        alert "emergency detected";
        connect "ann-analyser" -> "emergency-service";
        grant "ann-analyser" remove_secrecy {ann};
        setcontext "doctor-app" S = {medical, ann} I = {};
        actuate "ann-sensor" "sample-interval" 1;
        breakglass 30m
}
`
	set, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Rules) != 1 {
		t.Fatalf("parsed %d rules", len(set.Rules))
	}
	r := set.Rules[0]
	if r.Name != "emergency-response" || r.Priority != 10 {
		t.Fatalf("rule header = %q / %d", r.Name, r.Priority)
	}
	if r.Trigger.Kind != TriggerEvent || r.Trigger.Pattern != "tachycardia" {
		t.Fatalf("trigger = %+v", r.Trigger)
	}
	if r.When == nil {
		t.Fatal("guard missing")
	}
	if len(r.Do) != 7 {
		t.Fatalf("actions = %d, want 7", len(r.Do))
	}
	if a, ok := r.Do[3].(GrantAction); !ok || !a.Privs.RemoveSecrecy.Equal(ifc.MustLabel("ann")) {
		t.Fatalf("grant action = %+v", r.Do[3])
	}
	if a, ok := r.Do[4].(SetContextAction); !ok ||
		!a.Ctx.Secrecy.Equal(ifc.MustLabel("ann", "medical")) || !a.Ctx.Integrity.IsEmpty() {
		t.Fatalf("setcontext action = %+v", r.Do[4])
	}
	if a, ok := r.Do[6].(BreakGlassAction); !ok || a.For != 30*time.Minute {
		t.Fatalf("breakglass action = %+v", r.Do[6])
	}
}

func TestParseTriggers(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want Trigger
	}{
		{
			"event",
			`rule "r" { on event "p" do alert "x" }`,
			Trigger{Kind: TriggerEvent, Pattern: "p"},
		},
		{
			"context",
			`rule "r" { on context shift-status do alert "x" }`,
			Trigger{Kind: TriggerContext, Key: "shift-status"},
		},
		{
			"timer",
			`rule "r" { on timer 5m do alert "x" }`,
			Trigger{Kind: TriggerTimer, Every: 5 * time.Minute},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			set, err := Parse(tt.src)
			if err != nil {
				t.Fatal(err)
			}
			if got := set.Rules[0].Trigger; got != tt.want {
				t.Fatalf("trigger = %+v, want %+v", got, tt.want)
			}
		})
	}
}

func TestParseMultipleRulesAndPrecedence(t *testing.T) {
	src := `
rule "a" { on event "e" when ctx.x == 1 or ctx.y == 2 and ctx.z == 3 do alert "m" }
rule "b" { on event "e" do disconnect "p" -> "q"; quarantine "p" }
`
	set, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Rules) != 2 {
		t.Fatalf("rules = %d", len(set.Rules))
	}
	// "and" binds tighter than "or".
	want := "((ctx.x == 1) or ((ctx.y == 2) and (ctx.z == 3)))"
	if got := set.Rules[0].When.String(); got != want {
		t.Fatalf("precedence: %s, want %s", got, want)
	}
	if _, ok := set.Rules[1].Do[1].(QuarantineAction); !ok {
		t.Fatalf("action = %+v", set.Rules[1].Do[1])
	}
}

func TestParseParenthesesOverridePrecedence(t *testing.T) {
	set := MustParse(`rule "r" { on event "e" when (ctx.x == 1 or ctx.y == 2) and ctx.z == 3 do alert "m" }`)
	want := "(((ctx.x == 1) or (ctx.y == 2)) and (ctx.z == 3))"
	if got := set.Rules[0].When.String(); got != want {
		t.Fatalf("got %s", got)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name, src, wantFrag string
	}{
		{"empty", ``, "no rules"},
		{"missing-name", `rule { }`, "expected string"},
		{"bad-trigger", `rule "r" { on nothing do alert "x" }`, "expected event, context or timer"},
		{"missing-do", `rule "r" { on event "p" alert "x" }`, `expected "do"`},
		{"unknown-action", `rule "r" { on event "p" do explode "x" }`, "unknown action"},
		{"unknown-privilege", `rule "r" { on event "p" do grant "t" give_all {a} }`, "unknown privilege"},
		{"bad-expr", `rule "r" { on event "p" when == do alert "x" }`, "expected expression"},
		{"unterminated-string", `rule "r`, "unterminated string"},
		{"bad-char", `rule "r" { on event "p" do alert "x" } @`, "unexpected character"},
		{"missing-arrow", `rule "r" { on event "p" do connect "a" "b" }`, `expected "->"`},
		{"bad-label", "rule \"r\" { on event \"p\" do setcontext \"t\" S = {\"bad tag\"} I = {} }", "invalid tag"},
		{"timer-needs-duration", `rule "r" { on timer 5 do alert "x" }`, "expected duration"},
		{"bad-set-literal", `rule "r" { on event "p" do set k = alert }`, "expected literal"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Parse(tt.src)
			if err == nil {
				t.Fatalf("Parse succeeded, want error containing %q", tt.wantFrag)
			}
			if !strings.Contains(err.Error(), tt.wantFrag) {
				t.Fatalf("error %q does not contain %q", err, tt.wantFrag)
			}
		})
	}
}

func TestParseErrorsIncludeLineNumbers(t *testing.T) {
	src := "rule \"r\" {\n  on event \"p\"\n  do explode \"x\"\n}"
	_, err := Parse(src)
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error %v should name line 3", err)
	}
}

func TestParseTrailingSemicolon(t *testing.T) {
	set := MustParse(`rule "r" { on event "e" do alert "a"; alert "b"; }`)
	if len(set.Rules[0].Do) != 2 {
		t.Fatalf("actions = %d", len(set.Rules[0].Do))
	}
}

func TestParseStringEscapes(t *testing.T) {
	set := MustParse(`rule "r" { on event "e" do alert "say \"hi\"" }`)
	if a := set.Rules[0].Do[0].(AlertAction); a.Message != `say "hi"` {
		t.Fatalf("message = %q", a.Message)
	}
}

func TestParseNegativeNumbers(t *testing.T) {
	set := MustParse(`rule "r" { on event "e" when ctx.temp < -10 do alert "freezing" }`)
	want := "(ctx.temp < -10)"
	if got := set.Rules[0].When.String(); got != want {
		t.Fatalf("got %s", got)
	}
}

func TestRuleStringRoundTripsThroughParser(t *testing.T) {
	src := `rule "r" priority 3 { on event "e" when ctx.a == true do alert "m"; connect "x" -> "y" }`
	set := MustParse(src)
	rendered := set.Rules[0].String()
	// The rendered form must itself parse to an equivalent rule.
	set2, err := Parse(rendered)
	if err != nil {
		t.Fatalf("re-parse of %q: %v", rendered, err)
	}
	if set2.Rules[0].Name != "r" || set2.Rules[0].Priority != 3 || len(set2.Rules[0].Do) != 2 {
		t.Fatalf("round trip lost content: %s", set2.Rules[0])
	}
}

func TestParseEventFields(t *testing.T) {
	set := MustParse(`rule "r" { on event "e" when event.value > 100 and event.source == "ann-sensor" do alert "m" }`)
	if set.Rules[0].When == nil {
		t.Fatal("guard missing")
	}
}
