package policy

import (
	"fmt"
	"strconv"
	"strings"
	"time"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota + 1
	tokIdent
	tokString
	tokNumber
	tokDuration
	tokPunct // one of { } ( ) ; , = -> == != <= >= < > .
)

// A token is one lexeme with its source position (1-based line).
type token struct {
	kind tokenKind
	text string
	num  float64
	dur  time.Duration
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("%q", t.text)
	default:
		return t.text
	}
}

// A lexError carries the offending line.
type lexError struct {
	line int
	msg  string
}

func (e *lexError) Error() string { return fmt.Sprintf("policy: line %d: %s", e.line, e.msg) }

// lex tokenises policy source. Comments run from '#' to end of line.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '"':
			j := i + 1
			var sb strings.Builder
			for j < n && src[j] != '"' {
				if src[j] == '\n' {
					return nil, &lexError{line, "unterminated string"}
				}
				if src[j] == '\\' && j+1 < n {
					j++
				}
				sb.WriteByte(src[j])
				j++
			}
			if j >= n {
				return nil, &lexError{line, "unterminated string"}
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), line: line})
			i = j + 1
		case c >= '0' && c <= '9' || (c == '-' && i+1 < n && src[i+1] >= '0' && src[i+1] <= '9'):
			j := i
			if c == '-' {
				j++
			}
			for j < n && (src[j] >= '0' && src[j] <= '9' || src[j] == '.') {
				j++
			}
			numText := src[i:j]
			// A trailing duration unit turns the number into a duration.
			// After the first unit character, further digit/unit runs stay
			// part of the same literal, so compound durations like
			// "1h30m" or time.Duration's "720h0m0s" lex as one token.
			k := j
			for k < n {
				c := src[k]
				switch {
				case c == 's' || c == 'm' || c == 'h' || c == 'n' || c == 'u':
					k++
				case k > j && (c >= '0' && c <= '9' || c == '.'):
					k++
				default:
					goto unitsDone
				}
			}
		unitsDone:
			if k > j {
				d, err := time.ParseDuration(src[i:k])
				if err != nil {
					return nil, &lexError{line, fmt.Sprintf("bad duration %q", src[i:k])}
				}
				toks = append(toks, token{kind: tokDuration, text: src[i:k], dur: d, line: line})
				i = k
				continue
			}
			f, err := strconv.ParseFloat(numText, 64)
			if err != nil {
				return nil, &lexError{line, fmt.Sprintf("bad number %q", numText)}
			}
			toks = append(toks, token{kind: tokNumber, text: numText, num: f, line: line})
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < n && isIdentPart(rune(src[j])) {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: src[i:j], line: line})
			i = j
		default:
			// Multi-char punctuation first.
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			switch two {
			case "->", "==", "!=", "<=", ">=":
				toks = append(toks, token{kind: tokPunct, text: two, line: line})
				i += 2
				continue
			}
			switch c {
			case '{', '}', '(', ')', ';', ',', '=', '<', '>', '.':
				toks = append(toks, token{kind: tokPunct, text: string(c), line: line})
				i++
			default:
				return nil, &lexError{line, fmt.Sprintf("unexpected character %q", string(c))}
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, line: line})
	return toks, nil
}

// isIdentStart allows letters and underscore.
func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

// isIdentPart additionally allows digits, '-', and '/' so that tag names
// ("hosp-dev", "eu/personal-data") and context keys ("heart-rate") are
// single identifiers. '.' is not an identifier character: paths like
// ctx.location are three tokens.
func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '/'
}
