package policy

import (
	"fmt"

	"lciot/internal/ctxmodel"
	"lciot/internal/ifc"
)

// Parse compiles policy source into a PolicySet.
//
// Grammar (see package documentation for an example):
//
//	policyset  := (rule | obligation)*
//	rule       := "rule" STRING ["priority" NUMBER] "{" trigger ["when" expr] "do" actions "}"
//	trigger    := "on" "event" STRING | "on" "context" IDENT | "on" "timer" DURATION
//	actions    := action (";" action)* [";"]
//	obligation := "obligation" STRING "on" tag "{" obclause* "}"
//	obclause   := "retain" DURATION ";" | "erase" "on" STRING ";"
//	            | "residency" tag+ ";" | "purpose" tag+ ";"
//	tag        := IDENT | STRING
func Parse(src string) (*PolicySet, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	set := &PolicySet{}
	for !p.at(tokEOF) {
		if p.atKeyword("obligation") {
			o, err := p.obligation()
			if err != nil {
				return nil, err
			}
			set.Obligations = append(set.Obligations, o)
			continue
		}
		r, err := p.rule()
		if err != nil {
			return nil, err
		}
		set.Rules = append(set.Rules, r)
	}
	if len(set.Rules) == 0 && len(set.Obligations) == 0 {
		return nil, fmt.Errorf("policy: no rules or obligations in source")
	}
	return set, nil
}

// MustParse is Parse for compile-time-constant sources in tests/examples.
func MustParse(src string) *PolicySet {
	set, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return set
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(k tokenKind) bool { return p.cur().kind == k }

// atPunct reports whether the current token is the given punctuation.
func (p *parser) atPunct(s string) bool {
	return p.cur().kind == tokPunct && p.cur().text == s
}

// atKeyword reports whether the current token is the given identifier.
func (p *parser) atKeyword(s string) bool {
	return p.cur().kind == tokIdent && p.cur().text == s
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("policy: line %d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

// expectKeyword consumes a specific identifier.
func (p *parser) expectKeyword(s string) error {
	if !p.atKeyword(s) {
		return p.errf("expected %q, found %s", s, p.cur())
	}
	p.next()
	return nil
}

// expectPunct consumes specific punctuation.
func (p *parser) expectPunct(s string) error {
	if !p.atPunct(s) {
		return p.errf("expected %q, found %s", s, p.cur())
	}
	p.next()
	return nil
}

// expectString consumes a string literal.
func (p *parser) expectString() (string, error) {
	if !p.at(tokString) {
		return "", p.errf("expected string, found %s", p.cur())
	}
	return p.next().text, nil
}

// expectIdent consumes any identifier.
func (p *parser) expectIdent() (string, error) {
	if !p.at(tokIdent) {
		return "", p.errf("expected identifier, found %s", p.cur())
	}
	return p.next().text, nil
}

func (p *parser) rule() (*Rule, error) {
	if err := p.expectKeyword("rule"); err != nil {
		return nil, err
	}
	name, err := p.expectString()
	if err != nil {
		return nil, err
	}
	r := &Rule{Name: name}
	if p.atKeyword("priority") {
		p.next()
		if !p.at(tokNumber) {
			return nil, p.errf("expected priority number, found %s", p.cur())
		}
		r.Priority = int(p.next().num)
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	if r.Trigger, err = p.trigger(); err != nil {
		return nil, err
	}
	if p.atKeyword("when") {
		p.next()
		if r.When, err = p.expr(); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("do"); err != nil {
		return nil, err
	}
	for {
		a, err := p.action()
		if err != nil {
			return nil, err
		}
		r.Do = append(r.Do, a)
		if p.atPunct(";") {
			p.next()
			if p.atPunct("}") { // trailing semicolon
				break
			}
			continue
		}
		break
	}
	if err := p.expectPunct("}"); err != nil {
		return nil, err
	}
	return r, nil
}

// obligation parses one obligation declaration (the keyword is current).
func (p *parser) obligation() (*Obligation, error) {
	p.next() // consume "obligation"
	name, err := p.expectString()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("on"); err != nil {
		return nil, err
	}
	tag, err := p.tag()
	if err != nil {
		return nil, err
	}
	o := &Obligation{Name: name, Tag: tag}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	for !p.atPunct("}") {
		if err := p.obligationClause(o); err != nil {
			return nil, err
		}
		if p.atPunct(";") {
			p.next()
			continue
		}
		break
	}
	if err := p.expectPunct("}"); err != nil {
		return nil, err
	}
	return o, nil
}

// obligationClause parses one clause body (without its terminator).
func (p *parser) obligationClause(o *Obligation) error {
	switch {
	case p.atKeyword("retain"):
		p.next()
		if !p.at(tokDuration) {
			return p.errf("expected retention duration, found %s", p.cur())
		}
		if o.HasRetain {
			return p.errf("duplicate retain clause")
		}
		o.Retain = p.next().dur
		o.HasRetain = true
	case p.atKeyword("erase"):
		p.next()
		if err := p.expectKeyword("on"); err != nil {
			return err
		}
		ev, err := p.expectString()
		if err != nil {
			return err
		}
		o.EraseOn = append(o.EraseOn, ev)
	case p.atKeyword("residency"):
		p.next()
		tags, err := p.tagList()
		if err != nil {
			return err
		}
		o.Residency = append(o.Residency, tags...)
	case p.atKeyword("purpose"):
		p.next()
		tags, err := p.tagList()
		if err != nil {
			return err
		}
		o.Purpose = append(o.Purpose, tags...)
	default:
		return p.errf("expected retain, erase, residency or purpose, found %s", p.cur())
	}
	return nil
}

// tag parses a single tag (identifier or string) and validates it.
func (p *parser) tag() (ifc.Tag, error) {
	t := p.cur()
	if t.kind != tokIdent && t.kind != tokString {
		return "", p.errf("expected tag, found %s", t)
	}
	p.next()
	tag := ifc.Tag(t.text)
	if err := tag.Validate(); err != nil {
		return "", fmt.Errorf("policy: line %d: %w", t.line, err)
	}
	return tag, nil
}

// tagList parses one or more tags, optionally comma-separated, up to the
// clause terminator.
func (p *parser) tagList() ([]ifc.Tag, error) {
	var tags []ifc.Tag
	for {
		tag, err := p.tag()
		if err != nil {
			return nil, err
		}
		tags = append(tags, tag)
		if p.atPunct(",") {
			p.next()
			continue
		}
		if p.at(tokIdent) || p.at(tokString) {
			continue
		}
		return tags, nil
	}
}

func (p *parser) trigger() (Trigger, error) {
	if err := p.expectKeyword("on"); err != nil {
		return Trigger{}, err
	}
	switch {
	case p.atKeyword("event"):
		p.next()
		pat, err := p.expectString()
		if err != nil {
			return Trigger{}, err
		}
		return Trigger{Kind: TriggerEvent, Pattern: pat}, nil
	case p.atKeyword("context"):
		p.next()
		key, err := p.expectIdent()
		if err != nil {
			return Trigger{}, err
		}
		return Trigger{Kind: TriggerContext, Key: key}, nil
	case p.atKeyword("timer"):
		p.next()
		if !p.at(tokDuration) {
			return Trigger{}, p.errf("expected duration, found %s", p.cur())
		}
		return Trigger{Kind: TriggerTimer, Every: p.next().dur}, nil
	default:
		return Trigger{}, p.errf("expected event, context or timer, found %s", p.cur())
	}
}

// --- expressions ---

func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("or") {
		p.next()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("and") {
		p.next()
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "and", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.atKeyword("not") {
		p.next()
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &Not{X: x}, nil
	}
	return p.cmp()
}

func (p *parser) cmp() (Expr, error) {
	l, err := p.primary()
	if err != nil {
		return nil, err
	}
	if p.at(tokPunct) {
		switch p.cur().text {
		case "==", "!=", "<", "<=", ">", ">=":
			op := p.next().text
			r, err := p.primary()
			if err != nil {
				return nil, err
			}
			return &Binary{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokString:
		p.next()
		return &Lit{Val: ctxmodel.String(t.text)}, nil
	case t.kind == tokNumber:
		p.next()
		return &Lit{Val: ctxmodel.Number(t.num)}, nil
	case t.kind == tokDuration:
		p.next()
		return &Lit{Val: ctxmodel.Number(t.dur.Seconds())}, nil
	case p.atPunct("("):
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokIdent && t.text == "true":
		p.next()
		return &Lit{Val: ctxmodel.Bool(true)}, nil
	case t.kind == tokIdent && t.text == "false":
		p.next()
		return &Lit{Val: ctxmodel.Bool(false)}, nil
	case t.kind == tokIdent && (t.text == "ctx" || t.text == "event"):
		p.next()
		if err := p.expectPunct("."); err != nil {
			return nil, err
		}
		field, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &Path{Root: t.text, Field: field}, nil
	default:
		return nil, p.errf("expected expression, found %s", t)
	}
}

// --- actions ---

func (p *parser) action() (Action, error) {
	if !p.at(tokIdent) {
		return nil, p.errf("expected action, found %s", p.cur())
	}
	switch p.cur().text {
	case "alert":
		p.next()
		msg, err := p.expectString()
		if err != nil {
			return nil, err
		}
		return AlertAction{Message: msg}, nil
	case "connect", "disconnect":
		verb := p.next().text
		from, err := p.expectString()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("->"); err != nil {
			return nil, err
		}
		to, err := p.expectString()
		if err != nil {
			return nil, err
		}
		if verb == "connect" {
			return ConnectAction{From: from, To: to}, nil
		}
		return DisconnectAction{From: from, To: to}, nil
	case "setcontext":
		p.next()
		target, err := p.expectString()
		if err != nil {
			return nil, err
		}
		ctx, err := p.labelSpec()
		if err != nil {
			return nil, err
		}
		return SetContextAction{Target: target, Ctx: ctx}, nil
	case "grant":
		p.next()
		target, err := p.expectString()
		if err != nil {
			return nil, err
		}
		op, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		label, err := p.labelSet()
		if err != nil {
			return nil, err
		}
		var privs ifc.Privileges
		switch op {
		case "add_secrecy":
			privs.AddSecrecy = label
		case "remove_secrecy":
			privs.RemoveSecrecy = label
		case "add_integrity":
			privs.AddIntegrity = label
		case "remove_integrity":
			privs.RemoveIntegrity = label
		default:
			return nil, p.errf("unknown privilege %q (want add_secrecy, remove_secrecy, add_integrity or remove_integrity)", op)
		}
		return GrantAction{Target: target, Privs: privs}, nil
	case "set":
		p.next()
		key, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		return SetCtxAction{Key: key, Value: v}, nil
	case "breakglass":
		p.next()
		if !p.at(tokDuration) {
			return nil, p.errf("expected duration, found %s", p.cur())
		}
		return BreakGlassAction{For: p.next().dur}, nil
	case "quarantine":
		p.next()
		target, err := p.expectString()
		if err != nil {
			return nil, err
		}
		return QuarantineAction{Target: target}, nil
	case "actuate":
		p.next()
		dev, err := p.expectString()
		if err != nil {
			return nil, err
		}
		cmd, err := p.expectString()
		if err != nil {
			return nil, err
		}
		if !p.at(tokNumber) {
			return nil, p.errf("expected number, found %s", p.cur())
		}
		return ActuateAction{Device: dev, Command: cmd, Value: p.next().num}, nil
	default:
		return nil, p.errf("unknown action %q", p.cur().text)
	}
}

// literal parses a value literal for "set".
func (p *parser) literal() (ctxmodel.Value, error) {
	t := p.cur()
	switch {
	case t.kind == tokString:
		p.next()
		return ctxmodel.String(t.text), nil
	case t.kind == tokNumber:
		p.next()
		return ctxmodel.Number(t.num), nil
	case t.kind == tokDuration:
		p.next()
		return ctxmodel.Number(t.dur.Seconds()), nil
	case t.kind == tokIdent && t.text == "true":
		p.next()
		return ctxmodel.Bool(true), nil
	case t.kind == tokIdent && t.text == "false":
		p.next()
		return ctxmodel.Bool(false), nil
	default:
		return ctxmodel.Value{}, p.errf("expected literal, found %s", t)
	}
}

// labelSpec parses `S = {a, b} I = {c}`.
func (p *parser) labelSpec() (ifc.SecurityContext, error) {
	if err := p.expectKeyword("S"); err != nil {
		return ifc.SecurityContext{}, err
	}
	if err := p.expectPunct("="); err != nil {
		return ifc.SecurityContext{}, err
	}
	s, err := p.labelSet()
	if err != nil {
		return ifc.SecurityContext{}, err
	}
	if err := p.expectKeyword("I"); err != nil {
		return ifc.SecurityContext{}, err
	}
	if err := p.expectPunct("="); err != nil {
		return ifc.SecurityContext{}, err
	}
	i, err := p.labelSet()
	if err != nil {
		return ifc.SecurityContext{}, err
	}
	return ifc.SecurityContext{Secrecy: s, Integrity: i}, nil
}

// labelSet parses `{tag, tag, ...}`; elements are identifiers or strings.
func (p *parser) labelSet() (ifc.Label, error) {
	if err := p.expectPunct("{"); err != nil {
		return ifc.Label{}, err
	}
	var tags []ifc.Tag
	for !p.atPunct("}") {
		t := p.cur()
		switch t.kind {
		case tokIdent, tokString:
			tags = append(tags, ifc.Tag(t.text))
			p.next()
		default:
			return ifc.Label{}, p.errf("expected tag, found %s", t)
		}
		if p.atPunct(",") {
			p.next()
		}
	}
	p.next() // consume "}"
	label, err := ifc.NewLabel(tags...)
	if err != nil {
		return ifc.Label{}, fmt.Errorf("policy: line %d: %w", p.toks[p.pos-1].line, err)
	}
	return label, nil
}
