package policy

import (
	"strings"
	"testing"
	"time"
)

func TestParseObligation(t *testing.T) {
	set := MustParse(`
# GDPR-style duties for medical data.
obligation "gdpr-medical" on medical {
  retain 720h;
  erase on "subject-erasure";
  erase on "consent-withdrawn";
  residency eu uk;
  purpose research, treatment;
}
rule "r" { on timer 1s do alert "tick" }
`)
	if len(set.Obligations) != 1 || len(set.Rules) != 1 {
		t.Fatalf("parsed %d obligations, %d rules", len(set.Obligations), len(set.Rules))
	}
	o := set.Obligations[0]
	if o.Name != "gdpr-medical" || o.Tag != "medical" {
		t.Fatalf("decl = %+v", o)
	}
	if !o.HasRetain || o.Retain != 720*time.Hour {
		t.Fatalf("retain = %v (has %v)", o.Retain, o.HasRetain)
	}
	if len(o.EraseOn) != 2 || o.EraseOn[0] != "subject-erasure" || o.EraseOn[1] != "consent-withdrawn" {
		t.Fatalf("eraseOn = %v", o.EraseOn)
	}
	if len(o.Residency) != 2 || o.Residency[0] != "eu" || o.Residency[1] != "uk" {
		t.Fatalf("residency = %v", o.Residency)
	}
	if len(o.Purpose) != 2 || o.Purpose[0] != "research" || o.Purpose[1] != "treatment" {
		t.Fatalf("purpose = %v", o.Purpose)
	}
}

func TestParseObligationOnly(t *testing.T) {
	set := MustParse(`obligation "r" on sensor-data { retain 24h }`)
	if len(set.Obligations) != 1 {
		t.Fatalf("obligations = %d", len(set.Obligations))
	}
}

func TestParseObligationErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{`obligation on medical { retain 1h; }`, "expected string"},
		{`obligation "x" medical { retain 1h; }`, `expected "on"`},
		{`obligation "x" on medical { retain; }`, "expected retention duration"},
		{`obligation "x" on medical { retain 1h; retain 2h; }`, "duplicate retain"},
		{`obligation "x" on medical { shred now; }`, "expected retain, erase, residency or purpose"},
		{`obligation "x" on medical { erase "e"; }`, `expected "on"`},
		{`obligation "x" on "bad tag" { retain 1h; }`, "invalid tag"},
		{`obligation "x" on medical { residency; }`, "expected tag"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) = %v, want error containing %q", c.src, err, c.want)
		}
	}
}

func TestObligationStringRoundTrips(t *testing.T) {
	src := `obligation "g" on medical { retain 1h; erase on "e"; residency eu; purpose research; }`
	set := MustParse(src)
	again := MustParse(set.Obligations[0].String())
	if got, want := again.Obligations[0].String(), set.Obligations[0].String(); got != want {
		t.Fatalf("round trip:\n got %s\nwant %s", got, want)
	}
}
