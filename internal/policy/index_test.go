package policy

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"lciot/internal/cep"
	"lciot/internal/ctxmodel"
)

// genRuleSource builds a randomized policy set over a small universe of
// event patterns and context keys. Guards compare event.value or a context
// attribute against a random limit, so the brute-force reference below can
// evaluate them independently.
func genRuleSource(r *rand.Rand, nRules int) string {
	var b strings.Builder
	for i := 0; i < nRules; i++ {
		prio := r.Intn(5)
		switch r.Intn(3) {
		case 0: // event trigger, value guard
			fmt.Fprintf(&b, "rule \"r%d\" priority %d { on event \"p%d\" when event.value > %d do alert \"e%d\" }\n",
				i, prio, r.Intn(4), r.Intn(100), i)
		case 1: // event trigger, unguarded
			fmt.Fprintf(&b, "rule \"r%d\" priority %d { on event \"p%d\" do alert \"e%d\" }\n",
				i, prio, r.Intn(4), i)
		default: // context trigger, attribute guard
			fmt.Fprintf(&b, "rule \"r%d\" priority %d { on context k%d when ctx.k%d > %d do alert \"c%d\" }\n",
				i, prio, r.Intn(3), r.Intn(3), r.Intn(100), i)
		}
	}
	return b.String()
}

// bruteForceAlerts computes the alerts a detection must raise: scan every
// rule linearly in evaluation order (priority desc, name asc), keep event
// rules on the detection's pattern whose guard passes. This is the pre-index
// dispatch semantics the indexed engine must reproduce exactly.
func bruteForceAlerts(set *PolicySet, snap ctxmodel.Snapshot, d cep.Detection) []string {
	rules := append([]*Rule(nil), set.Rules...)
	sort.SliceStable(rules, func(i, j int) bool {
		if rules[i].Priority != rules[j].Priority {
			return rules[i].Priority > rules[j].Priority
		}
		return rules[i].Name < rules[j].Name
	})
	env := &Env{Ctx: snap, Event: EventView{Pattern: d.Pattern, Value: d.Value, Present: true}}
	var out []string
	for _, r := range rules {
		if r.Trigger.Kind != TriggerEvent || r.Trigger.Pattern != d.Pattern {
			continue
		}
		if r.When != nil {
			ok, err := evalBool(r.When, env)
			if err != nil || !ok {
				continue
			}
		}
		for _, a := range r.Do {
			out = append(out, a.(AlertAction).Message)
		}
	}
	return out
}

// bruteForceCtxAlerts is bruteForceAlerts for a context-change trigger.
func bruteForceCtxAlerts(set *PolicySet, snap ctxmodel.Snapshot, key string) []string {
	rules := append([]*Rule(nil), set.Rules...)
	sort.SliceStable(rules, func(i, j int) bool {
		if rules[i].Priority != rules[j].Priority {
			return rules[i].Priority > rules[j].Priority
		}
		return rules[i].Name < rules[j].Name
	})
	env := &Env{Ctx: snap}
	var out []string
	for _, r := range rules {
		if r.Trigger.Kind != TriggerContext || r.Trigger.Key != key {
			continue
		}
		if r.When != nil {
			ok, err := evalBool(r.When, env)
			if err != nil || !ok {
				continue
			}
		}
		for _, a := range r.Do {
			out = append(out, a.(AlertAction).Message)
		}
	}
	return out
}

// TestDispatchIndexedMatchesBruteForce drives randomized rule sets through
// the indexed engine and checks every emitted action against a linear scan
// over all rules.
func TestDispatchIndexedMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		r := rand.New(rand.NewSource(seed))
		set := MustParse(genRuleSource(r, r.Intn(30)+5))

		store := ctxmodel.NewStore(nil)
		for k := 0; k < 3; k++ {
			store.Set(fmt.Sprintf("k%d", k), ctxmodel.Number(float64(r.Intn(200))))
		}

		var got []string
		eng := NewEngine(store, func(a Action) error {
			got = append(got, a.(AlertAction).Message)
			return nil
		})
		eng.Load(set)

		// Event dispatch.
		for trial := 0; trial < 20; trial++ {
			d := cep.Detection{
				Pattern: fmt.Sprintf("p%d", r.Intn(5)), // p4 matches no rule
				Value:   float64(r.Intn(200)),
			}
			got = nil
			if errs := eng.HandleDetection(d); len(errs) != 0 {
				t.Fatalf("seed %d: unexpected errors %v", seed, errs)
			}
			want := bruteForceAlerts(set, store.Snapshot(), d)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d: detection %+v dispatched %v, brute force says %v", seed, d, got, want)
			}
		}

		// Context dispatch.
		for trial := 0; trial < 10; trial++ {
			key := fmt.Sprintf("k%d", r.Intn(4)) // k3 matches no rule
			got = nil
			eng.HandleContextChange(ctxmodel.Change{Key: key})
			want := bruteForceCtxAlerts(set, store.Snapshot(), key)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d: context change %q dispatched %v, brute force says %v", seed, key, got, want)
			}
		}
	}
}

// TestIndexRebuiltOnLoadAndAddRules: dispatch must see rules added after the
// first Load, and must stop seeing replaced rules.
func TestIndexRebuiltOnLoadAndAddRules(t *testing.T) {
	var got []string
	eng := NewEngine(ctxmodel.NewStore(nil), func(a Action) error {
		got = append(got, a.(AlertAction).Message)
		return nil
	})
	eng.Load(MustParse(`rule "a" { on event "hr" do alert "first" }`))
	eng.HandleDetection(cep.Detection{Pattern: "hr"})
	if !reflect.DeepEqual(got, []string{"first"}) {
		t.Fatalf("initial dispatch = %v", got)
	}

	eng.AddRules(MustParse(`rule "b" priority 1 { on event "hr" do alert "second" }`))
	got = nil
	eng.HandleDetection(cep.Detection{Pattern: "hr"})
	if !reflect.DeepEqual(got, []string{"second", "first"}) {
		t.Fatalf("after AddRules dispatch = %v (priority order within bucket broken?)", got)
	}

	eng.Load(MustParse(`rule "c" { on event "hr" do alert "only" }`))
	got = nil
	eng.HandleDetection(cep.Detection{Pattern: "hr"})
	if !reflect.DeepEqual(got, []string{"only"}) {
		t.Fatalf("after replacing Load dispatch = %v", got)
	}
}

// TestConcurrentDispatchAndLoad exercises the index under -race: concurrent
// detections, context changes, ticks and reloads must not race.
func TestConcurrentDispatchAndLoad(t *testing.T) {
	store := ctxmodel.NewStore(nil)
	store.Set("k0", ctxmodel.Number(1))
	eng := NewEngine(store, func(Action) error { return nil })
	src := `
rule "e" { on event "hr" when event.value > 10 do alert "e" }
rule "c" { on context k0 do alert "c" }
rule "t" { on timer 1ms do alert "t" }
`
	eng.Load(MustParse(src))

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch w {
				case 0:
					eng.HandleDetection(cep.Detection{Pattern: "hr", Value: float64(i)})
				case 1:
					eng.HandleContextChange(ctxmodel.Change{Key: "k0"})
				case 2:
					eng.Tick()
				default:
					eng.Load(MustParse(src))
				}
			}
		}(w)
	}
	wg.Wait()
}
