// Package policy implements the paper's policy plane (Sections 3.1, 5 and
// 8.1): a small declarative language for Event-Condition-Action rules that
// bind legal obligations and user preferences to enforcement mechanisms,
// and an engine that evaluates them against context and event detections,
// resolves conflicts between rules (Challenge 4), supports break-glass
// overrides with automatic revert (Concern 6), and emits reconfiguration
// actions for the middleware to execute (Fig. 8).
//
// The language, by example:
//
//	rule "emergency-response" priority 10 {
//	    on event "tachycardia"
//	    when ctx.location == "home" and not ctx.emergency
//	    do
//	        set emergency = true;
//	        alert "emergency detected";
//	        connect "ann-analyser" -> "emergency-service";
//	        grant "ann-analyser" remove_secrecy {ann};
//	        setcontext "doctor-app" S = {medical, ann} I = {};
//	        actuate "ann-sensor" "sample-interval" 1;
//	        breakglass 30m
//	}
//
// Rules trigger on event detections (from package cep), on context-
// attribute changes, or on timers. Conditions are boolean expressions over
// the context snapshot (ctx.*) and the triggering event (event.*). Actions
// are *descriptions* handed to an executor — the policy engine decides,
// the middleware enforces, matching the paper's separation between policy
// engines and the reconfiguration mechanism.
//
// # Trigger-indexed dispatch
//
// Load buckets the sorted rule list by trigger — event rules by pattern
// name, context rules by attribute key, timer rules in their own list —
// with each bucket in evaluation order (priority descending, name
// ascending). HandleDetection and HandleContextChange then evaluate only
// the matching bucket, so dispatch cost tracks the rules a trigger can
// fire rather than the loaded rule count: 1000 loaded rules of which
// three trigger on a pattern cost three guard evaluations. Conflict
// resolution and priority order within a dispatch are unchanged from the
// linear scan.
//
// # Lock-free parallel dispatch
//
// The trigger index is one immutable generation behind an atomic
// pointer: Load/AddRules build a fresh index and swap it in whole, so a
// dispatching goroutine never observes a half-built index and never
// takes a lock to find its bucket. With WithDispatchLanes(n) the
// bucket maps are partitioned across n lanes by the shared FNV-1a
// trigger-key hash (internal/lanehash) — aligned with the bus's shard
// placement, so each shard dispatcher mostly touches its own lane's
// maps. A trigger key's whole bucket always lives on one lane, so the
// lane count is purely a cache-contention knob; evaluation semantics
// are identical at any width. Per-rule firing stats (FiredCount, timer
// cadence) are atomics carried across reloads by rule name, and the
// break-glass fast path is a single atomic load when no override has
// been opened. Timer rules have no dispatch key; Tick evaluates them on
// the maintenance cadence, off the parallel path.
package policy
