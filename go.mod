module lciot

go 1.22
