#!/bin/sh
# docs-freshness: fail CI when operator-facing docs still carry claims
# that stopped being true when the parallel dispatch plane landed.
# Each denylist entry is a present-tense claim about the architecture
# that a past PR made false; history sections may *mention* the old
# design ("replaced the single pending list"), but a doc asserting it
# as current fails here. If a new entry false-positives on a history
# mention, rephrase the history — a stale claim shipping to operators
# costs more than a reword.
set -eu
cd "$(dirname "$0")/.."

DOCS="README.md DESIGN.md ROADMAP.md
internal/audit/doc.go internal/cep/doc.go internal/core/doc.go
internal/policy/doc.go internal/sbus/doc.go internal/store/doc.go"

fail=0
check() {
    pattern=$1
    why=$2
    # shellcheck disable=SC2086
    if matches=$(grep -nE "$pattern" $DOCS); then
        echo "docs-freshness: stale claim — $why"
        echo "$matches"
        echo
        fail=1
    fi
}

check 'single-threaded by design' \
    'CEP offers ShardedEngine lanes; only Engine is externally serialized'
check 'still (runs |run )?single-threaded' \
    'detection→policy→audit dispatch is lane-partitioned per bus shard'
check 'mutex-guarded pending list' \
    'audit ingest stages per lane; only chain-head assignment serializes'
check 'serial(ises|izes) every (access|delivery)' \
    'the domain takes no engine-wide lock around CEP or policy dispatch'
check 'B1.B1[0-6]([^0-9]|$)' \
    'the benchmark table range is B1–B17 (BENCH_10.json)'
check 'histograms in summary form|latency summaries \(p50/p90/p99\)' \
    '/metrics serves native histograms (le buckets) with companion _quantile gauges'
check 'Link protocol v2/v3/v4([^/]|$)' \
    'the link protocol is v2–v5; v5 carries the stage-clock egress timestamp'
check 'serves four surfaces' \
    'the operator surface has five endpoints: /metrics, /healthz, /traces, /lanes, pprof'

if [ "$fail" -eq 0 ]; then
    echo "docs-freshness: OK"
fi
exit "$fail"
